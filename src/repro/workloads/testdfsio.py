"""TestDFSIO: the HDFS throughput benchmark (paper Figs 11-13).

A Map/Reduce workload (via :class:`~repro.workloads.mapreduce.MiniMapReduce`)
where each map task reads or writes one file.  Reports the same numbers the
real benchmark prints: aggregate throughput (MB/s) and the cumulative CPU
running time of the benchmark's tasks (Fig 12's metric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.metrics.accounting import CLIENT_APPLICATION
from repro.storage.content import PatternSource
from repro.workloads.mapreduce import MapSpec, MiniMapReduce

DATA_DIR = "/benchmarks/TestDFSIO/io_data"


@dataclass
class DfsioResult:
    """What TestDFSIO prints at the end of a run."""
    operation: str            # 'write' | 'read'
    files: int
    total_bytes: int
    elapsed_seconds: float
    cpu_seconds: float        # client-side CPU consumed by the benchmark

    @property
    def throughput_mbps(self) -> float:
        """Aggregate MB/s (decimal MB, like the benchmark reports)."""
        return self.total_bytes / 1e6 / self.elapsed_seconds

    @property
    def cpu_milliseconds(self) -> float:
        return self.cpu_seconds * 1e3


class TestDfsio:
    """Drives write/read phases against one HDFS client."""

    #: Not a pytest test class, despite the (benchmark-faithful) name.
    __test__ = False

    def __init__(self, client, request_bytes: int = 1 << 20,
                 map_slots: int = 1, seed: int = 0):
        self.client = client
        self.request_bytes = request_bytes
        self.map_slots = map_slots
        self.seed = seed

    # ------------------------------------------------------------------ paths
    def file_path(self, index: int) -> str:
        return f"{DATA_DIR}/test_io_{index}"

    # ------------------------------------------------------------------ write
    def write(self, n_files: int, file_bytes: int, favored=None,
              spread: bool = False):
        """Generator: the -write phase.  Returns a DfsioResult."""
        sim = self.client.vm.sim
        mark = self._cpu_mark()
        start = sim.now
        for index in range(n_files):
            payload = PatternSource(file_bytes, seed=self.seed + index)
            yield from self.client.write_file(
                self.file_path(index), payload, favored=favored,
                spread=spread)
        elapsed = sim.now - start
        return DfsioResult("write", n_files, n_files * file_bytes, elapsed,
                           self._cpu_since(mark))

    # ------------------------------------------------------------------- read
    def read(self, n_files: int):
        """Generator: the -read phase over files written by :meth:`write`."""
        sim = self.client.vm.sim
        engine = MiniMapReduce(self.client, map_slots=self.map_slots)
        specs = [MapSpec(self.file_path(i), self.request_bytes)
                 for i in range(n_files)]
        mark = self._cpu_mark()
        start = sim.now
        results = yield from engine.run(specs)
        elapsed = sim.now - start
        total = sum(r.bytes_read for r in results)
        return DfsioResult("read", n_files, total, elapsed,
                           self._cpu_since(mark))

    # ------------------------------------------------------------------- CPU
    def _cpu_mark(self):
        return self.client.vm.host.accounting.snapshot()

    def _cpu_since(self, mark) -> float:
        window = self.client.vm.host.accounting.since(mark)
        by_thread = window.by_thread()
        return by_thread.get(self.client.vm.vcpu.name, 0.0)
