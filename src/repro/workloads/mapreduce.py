"""A mini MapReduce engine over HDFS.

Map tasks stream their input split from HDFS (through whatever client they
are given — vanilla or vRead) and charge per-byte/per-record CPU for the
user map function; an optional reduce phase charges aggregation CPU.  This
is deliberately the smallest engine that makes the paper's application
benchmarks (TestDFSIO, HBase PerformanceEvaluation, Hive queries) *real
consumers of the HDFS data path* instead of synthetic loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.metrics.accounting import CLIENT_APPLICATION
from repro.sim import AllOf


@dataclass
class MapSpec:
    """One map task: an HDFS file (split) to consume."""
    path: str
    #: Application-buffer request size for the streaming reads.
    request_bytes: int = 1 << 20


@dataclass
class TaskResult:
    path: str
    bytes_read: int
    duration: float
    map_output: object = None


class MiniMapReduce:
    """Run map tasks with bounded slot concurrency inside one client VM."""

    def __init__(self, client, map_slots: int = 1,
                 map_cycles_per_byte: float = 0.05,
                 map_cycles_per_call: float = 20_000.0,
                 heartbeat_interval: float = 0.01,
                 heartbeat_duty: float = 0.02):
        if map_slots < 1:
            raise ValueError(f"need at least one map slot: {map_slots}")
        self.client = client
        self.map_slots = map_slots
        self.map_cycles_per_byte = map_cycles_per_byte
        self.map_cycles_per_call = map_cycles_per_call
        #: Task-tracker heartbeat / progress-reporting overhead: while a job
        #: runs, the framework burns ``heartbeat_duty`` of a core in bursts
        #: every ``heartbeat_interval`` — so a job's CPU *time* scales with
        #: its wall time, as the real TestDFSIO reports (paper Fig 12).
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_duty = heartbeat_duty

    def run(self, specs: List[MapSpec],
            mapper: Optional[Callable] = None,
            mapper_factory: Optional[Callable] = None):
        """Generator: run all map tasks; returns list of TaskResult.

        ``mapper(piece)`` is called per request-sized piece and may return a
        partial result; results are collected in task order.  For stateful
        per-task mappers (e.g. word carry across piece boundaries) pass
        ``mapper_factory(spec) -> mapper`` instead — each task gets its own
        instance, which keeps concurrent slots isolated.
        """
        if mapper is not None and mapper_factory is not None:
            raise ValueError("pass either mapper or mapper_factory, not both")
        sim = self.client.vm.sim
        results: List[Optional[TaskResult]] = [None] * len(specs)
        pending = list(enumerate(specs))
        pending.reverse()  # pop from the front

        def slot_worker():
            while pending:
                index, spec = pending.pop()
                task_mapper = (mapper_factory(spec)
                               if mapper_factory is not None else mapper)
                results[index] = yield from self._map_task(spec, task_mapper)

        job = {"running": True}

        def heartbeat():
            vcpu = self.client.vm.vcpu
            while job["running"]:
                yield sim.timeout(self.heartbeat_interval)
                if not job["running"]:
                    break
                cycles = (self.heartbeat_duty * self.heartbeat_interval
                          * self.client.vm.host.frequency_hz)
                yield from vcpu.run(cycles, CLIENT_APPLICATION)

        workers = [sim.process(slot_worker())
                   for _ in range(min(self.map_slots, len(specs)))]
        if workers:
            sim.process(heartbeat())
            try:
                yield AllOf(sim, workers)
            finally:
                job["running"] = False
        return results

    def _map_task(self, spec: MapSpec, mapper: Optional[Callable]):
        sim = self.client.vm.sim
        vcpu = self.client.vm.vcpu
        start = sim.now
        stream = yield from self.client.open(spec.path)
        bytes_read = 0
        outputs = []
        while True:
            piece = yield from stream.read(spec.request_bytes)
            if piece is None:
                break
            bytes_read += piece.size
            cycles = (self.map_cycles_per_call
                      + self.map_cycles_per_byte * piece.size)
            yield from vcpu.run(cycles, CLIENT_APPLICATION)
            if mapper is not None:
                outputs.append(mapper(piece))
        stream.close()
        return TaskResult(spec.path, bytes_read, sim.now - start,
                          map_output=outputs)
