"""netperf TCP_RR: request/response transactions between two VMs.

Reproduces the paper's Figure 3 microbenchmark: a netperf server and client
in two co-located VMs; the transaction rate collapses when extra
CPU-loaded VMs keep the vCPU and vhost threads from finding free cores.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.accounting import OTHERS
from repro.net.tcp import VmNetwork

NETPERF_PORT = 12865


class NetperfRR:
    """A TCP_RR run: fixed-size request, fixed-size response, in a loop."""

    def __init__(self, network: VmNetwork, client_vm, server_vm,
                 request_bytes: int, response_bytes: Optional[int] = None):
        if request_bytes <= 0:
            raise ValueError(f"request size must be positive: {request_bytes}")
        self.network = network
        self.client_vm = client_vm
        self.server_vm = server_vm
        self.request_bytes = request_bytes
        self.response_bytes = (response_bytes if response_bytes is not None
                               else request_bytes)
        self.transactions = 0

    def run(self, duration: float):
        """Generator: run transactions for ``duration``; returns rate/sec."""
        sim = self.client_vm.sim
        listener = self.network.listen(self.server_vm, NETPERF_PORT)

        def server():
            connection = yield from listener.accept()
            while True:
                yield from connection.recv(self.server_vm)
                yield from connection.send(self.server_vm, b"",
                                           size=self.response_bytes)

        sim.process(server())
        connection = yield from self.network.connect(
            self.client_vm, self.server_vm, NETPERF_PORT)
        start = sim.now
        deadline = start + duration
        while sim.now < deadline:
            yield from connection.send(self.client_vm, b"",
                                       size=self.request_bytes)
            yield from connection.recv(self.client_vm)
            self.transactions += 1
        elapsed = sim.now - start
        return self.transactions / elapsed

    def __repr__(self) -> str:
        return (f"<NetperfRR {self.client_vm.name}->{self.server_vm.name} "
                f"req={self.request_bytes}B tx={self.transactions}>")
