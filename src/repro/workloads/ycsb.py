"""A YCSB-like workload generator over the HBase-like store.

Implements the core of the Yahoo! Cloud Serving Benchmark that matters for
a data-path study: configurable read/scan mixes over uniform or zipfian key
distributions.  Zipfian skew concentrates requests on hot rows, which makes
cache behaviour — and therefore vRead's host-page-cache synergy — visible
in a way uniform traffic hides.

Workload presets follow YCSB's letters where they are read-only (the store
is write-once): C (100% reads) and E (95% scans / 5% reads).
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.workloads.hbase import HBaseTable


class ZipfianGenerator:
    """Zipf-distributed integers in [0, n) (YCSB's constant, theta=0.99).

    Uses the exact CDF (fine for the table sizes simulated here); sampling
    is O(log n) by bisection.
    """

    def __init__(self, n: int, theta: float = 0.99,
                 rng: Optional[random.Random] = None):
        if n < 1:
            raise ValueError(f"need at least one item: {n}")
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0, 1): {theta}")
        self.n = n
        self.theta = theta
        self.rng = rng or random.Random(0)
        weights = [1.0 / (i + 1) ** theta for i in range(n)]
        total = 0.0
        self._cdf: List[float] = []
        for weight in weights:
            total += weight
            self._cdf.append(total)
        self._total = total

    def next(self) -> int:
        """Sample one rank (0 = hottest)."""
        point = self.rng.random() * self._total
        return bisect.bisect_left(self._cdf, point)

    def hot_fraction(self, top_k: int) -> float:
        """Probability mass of the hottest ``top_k`` items."""
        if top_k <= 0:
            return 0.0
        return self._cdf[min(top_k, self.n) - 1] / self._total


@dataclass
class YcsbResult:
    operations: int
    reads: int
    scans: int
    bytes_read: int
    elapsed_seconds: float

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.elapsed_seconds

    @property
    def throughput_mbps(self) -> float:
        return self.bytes_read / 1e6 / self.elapsed_seconds


class YcsbWorkload:
    """Drive a read/scan mix against an :class:`HBaseTable`."""

    def __init__(self, table: HBaseTable, distribution: str = "zipfian",
                 read_fraction: float = 1.0, scan_rows: int = 50,
                 theta: float = 0.99, seed: int = 0):
        if not 0 <= read_fraction <= 1:
            raise ValueError(f"read_fraction must be in [0,1]: {read_fraction}")
        if distribution not in ("zipfian", "uniform"):
            raise ValueError(f"unknown distribution {distribution!r}")
        if table.n_rows == 0:
            raise ValueError("table is empty — load it first")
        self.table = table
        self.read_fraction = read_fraction
        self.scan_rows = scan_rows
        self.rng = random.Random(seed)
        if distribution == "zipfian":
            self._keygen = ZipfianGenerator(table.n_rows, theta,
                                            random.Random(seed + 1))
            self.next_key = self._keygen.next
        else:
            self.next_key = lambda: self.rng.randrange(table.n_rows)

    def run(self, operations: int) -> "YcsbResult":
        """Generator: execute ``operations`` ops; returns a YcsbResult."""
        if operations < 1:
            raise ValueError(f"need at least one operation: {operations}")
        table = self.table
        sim = table.client.vm.sim
        start = sim.now
        reads = scans = 0
        bytes_read = 0
        for _ in range(operations):
            key = self.next_key()
            if self.rng.random() < self.read_fraction:
                bytes_read += yield from table._get(
                    key, table.get_cycles_per_row)
                reads += 1
            else:
                # Scan forward from the key, clamped to the table end.
                rows = min(self.scan_rows, table.n_rows - key)
                region, offset = table._locate(key)
                stream = yield from table._stream(region)
                piece = yield from stream.pread(
                    offset, rows * table.row_bytes)
                bytes_read += piece.size
                yield from table.client.vm.vcpu.run(
                    table.scan_cycles_per_row * rows,
                    "client-application")
                scans += 1
        return YcsbResult(operations, reads, scans, bytes_read,
                          sim.now - start)
