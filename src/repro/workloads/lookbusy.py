"""lookbusy: a fixed-utilization CPU load generator.

The paper runs ``lookbusy 85%`` in background VMs to create the CPU
contention that delays VM/I/O-thread synchronization (Figs 3 and 9-12).
Each period the hog burns ``utilization x period`` of CPU on its VM's vCPU
and sleeps the rest.
"""

from __future__ import annotations

from repro.metrics.accounting import OTHERS


class Lookbusy:
    """An 85%-style CPU hog pinned to one VM."""

    CATEGORY = "lookbusy"

    def __init__(self, vm, utilization: float = 0.85,
                 period_seconds: float = 0.01):
        if not 0 < utilization <= 1:
            raise ValueError(f"utilization must be in (0, 1]: {utilization}")
        if period_seconds <= 0:
            raise ValueError(f"period must be positive: {period_seconds}")
        self.vm = vm
        self.utilization = utilization
        self.period_seconds = period_seconds
        self.stopped = False
        self.process = vm.sim.process(self._run())

    def _run(self):
        sim = self.vm.sim
        while not self.stopped:
            # Burn utilization*period worth of *cycles at the current clock*;
            # under contention the busy phase stretches, like real lookbusy
            # competing for the CPU.
            busy_cycles = (self.utilization * self.period_seconds
                           * self.vm.host.frequency_hz)
            yield from self.vm.vcpu.run(busy_cycles, self.CATEGORY)
            idle = (1 - self.utilization) * self.period_seconds
            if idle > 0:
                yield sim.timeout(idle)

    def stop(self) -> None:
        """Stop after the current period (lets ``sim.run()`` terminate)."""
        self.stopped = True

    def __repr__(self) -> str:
        return (f"<Lookbusy {self.utilization:.0%} on {self.vm.name} "
                f"{'stopped' if self.stopped else 'running'}>")
