"""A Sqoop-like export: HDFS table -> MySQL over the LAN (paper Table 3).

The export reads the Hive table's files from HDFS, serializes rows into
batched INSERT statements, and ships them over TCP to a MySQL server
running in a VM on another physical machine.  The MySQL side charges
parse/index/commit work per batch — the write-side bottleneck that caps
vRead's benefit at the paper's 11.3%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.accounting import CLIENT_APPLICATION, OTHERS
from repro.net.tcp import VmNetwork

MYSQL_PORT = 3306


@dataclass
class ExportResult:
    rows: int
    batches: int
    elapsed_seconds: float


class MySqlServer:
    """A minimal MySQL model: parse + index-update + commit per batch."""

    def __init__(self, vm, network: VmNetwork,
                 insert_cycles_per_row: float = 450.0,
                 commit_cycles: float = 10_000.0,
                 commit_flush_bytes: int = 4096):
        self.vm = vm
        self.network = network
        self.insert_cycles_per_row = insert_cycles_per_row
        self.commit_cycles = commit_cycles
        self.commit_flush_bytes = commit_flush_bytes
        self.rows_inserted = 0
        vm.guest_fs.mkdir("/var/lib/mysql", parents=True)
        self._listener = network.listen(vm, MYSQL_PORT)
        vm.sim.process(self._serve())

    def _serve(self):
        while True:
            connection = yield from self._listener.accept()
            self.vm.sim.process(self._handle(connection))

    def _handle(self, connection):
        while True:
            batch = yield from connection.recv(self.vm)
            rows, nbytes = batch
            cycles = self.insert_cycles_per_row * rows + self.commit_cycles
            yield from self.vm.vcpu.run(cycles, OTHERS)
            # Redo log / binlog flush for the transaction.
            yield from self.vm.write_file("/var/lib/mysql/ibdata",
                                          b"\x00" * min(nbytes,
                                                        self.commit_flush_bytes),
                                          sync=True)
            self.rows_inserted += rows
            yield from connection.send(self.vm, ("ok", rows))


class SqoopExport:
    """sqoop-export: stream an HDFS table into MySQL."""

    def __init__(self, client, mysql: MySqlServer, network: VmNetwork,
                 batch_rows: int = 1000,
                 serialize_cycles_per_row: float = 300.0):
        self.client = client
        self.mysql = mysql
        self.network = network
        self.batch_rows = batch_rows
        self.serialize_cycles_per_row = serialize_cycles_per_row

    def export_table(self, table, request_bytes: int = 1 << 20):
        """Generator: export every row of a HiveTable; returns ExportResult."""
        sim = self.client.vm.sim
        vcpu = self.client.vm.vcpu
        connection = yield from self.network.connect(
            self.client.vm, self.mysql.vm, MYSQL_PORT)
        start = sim.now
        rows_sent = 0
        batches = 0
        pending_rows = 0
        pending_bytes = 0
        for index in range(table.n_files):
            stream = yield from self.client.open(table.file_path(index))
            while True:
                piece = yield from stream.read(request_bytes)
                if piece is None:
                    break
                rows = max(1, piece.size // table.row_bytes)
                yield from vcpu.run(rows * self.serialize_cycles_per_row,
                                    CLIENT_APPLICATION)
                pending_rows += rows
                pending_bytes += piece.size
                while pending_rows >= self.batch_rows:
                    take = self.batch_rows
                    take_bytes = take * table.row_bytes
                    batch_rows, batch_bytes = take, min(take_bytes,
                                                        pending_bytes)
                    pending_rows -= take
                    pending_bytes -= batch_bytes
                    yield from connection.send(
                        self.client.vm, (batch_rows, batch_bytes),
                        size=batch_bytes, copy_category=CLIENT_APPLICATION)
                    yield from connection.recv(self.client.vm)
                    rows_sent += batch_rows
                    batches += 1
            stream.close()
        if pending_rows:
            yield from connection.send(
                self.client.vm, (pending_rows, pending_bytes),
                size=max(1, pending_bytes), copy_category=CLIENT_APPLICATION)
            yield from connection.recv(self.client.vm)
            rows_sent += pending_rows
            batches += 1
        return ExportResult(rows_sent, batches, sim.now - start)
