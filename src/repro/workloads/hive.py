"""A Hive-like warehouse: tables as delimited rows on HDFS (paper Table 3).

The paper's query (``select * from test where id >= x and id <= y``) is a
predicate scan over a 30M-row user table.  Here a table is a set of HDFS
files of fixed-width rows; a query runs as map tasks that stream the files
and evaluate the predicate per row, charging deserialization + predicate
CPU — the dilution that turns the raw HDFS gain into Table 3's 21.3%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.metrics.accounting import CLIENT_APPLICATION
from repro.storage.content import PatternSource


@dataclass
class QueryResult:
    matched_rows: int
    scanned_rows: int
    elapsed_seconds: float


class HiveTable:
    """A Hive managed table of fixed-width rows stored in HDFS files."""

    def __init__(self, client, name: str = "test", row_bytes: int = 128,
                 rows_per_file: int = 262_144,
                 deserialize_cycles_per_row: float = 300.0,
                 predicate_cycles_per_row: float = 100.0, seed: int = 21):
        self.client = client
        self.name = name
        self.row_bytes = row_bytes
        self.rows_per_file = rows_per_file
        self.deserialize_cycles_per_row = deserialize_cycles_per_row
        self.predicate_cycles_per_row = predicate_cycles_per_row
        self.seed = seed
        self.n_rows = 0

    def file_path(self, index: int) -> str:
        return f"/user/hive/warehouse/{self.name}/part-{index:05d}"

    @property
    def n_files(self) -> int:
        return -(-self.n_rows // self.rows_per_file) if self.n_rows else 0

    # ------------------------------------------------------------------- load
    def load(self, n_rows: int, spread: bool = True):
        """Generator: LOAD DATA — populate the table files."""
        if n_rows <= 0:
            raise ValueError(f"row count must be positive: {n_rows}")
        self.n_rows = n_rows
        for index in range(self.n_files):
            rows_here = min(self.rows_per_file,
                            n_rows - index * self.rows_per_file)
            payload = PatternSource(rows_here * self.row_bytes,
                                    seed=self.seed + index)
            yield from self.client.write_file(self.file_path(index), payload,
                                              spread=spread)

    # ------------------------------------------------------------------ query
    def select_where_id_between(self, low: int, high: int,
                                request_bytes: int = 1 << 20):
        """Generator: the paper's range query; returns a QueryResult.

        Row ids are the row ordinals, so the predicate's selectivity is
        exact; every row is still scanned (no indexes in Hive-on-MR).
        """
        sim = self.client.vm.sim
        vcpu = self.client.vm.vcpu
        start = sim.now
        scanned = 0
        matched = 0
        for index in range(self.n_files):
            stream = yield from self.client.open(self.file_path(index))
            while True:
                piece = yield from stream.read(request_bytes)
                if piece is None:
                    break
                rows = max(1, piece.size // self.row_bytes)
                first_row = scanned
                scanned += rows
                lo = max(low, first_row)
                hi = min(high, first_row + rows - 1)
                if hi >= lo:
                    matched += hi - lo + 1
                cycles = rows * (self.deserialize_cycles_per_row
                                 + self.predicate_cycles_per_row)
                yield from vcpu.run(cycles, CLIENT_APPLICATION)
            stream.close()
        return QueryResult(matched, scanned, sim.now - start)
