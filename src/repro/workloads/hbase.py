"""An HBase-like store on HDFS (paper Table 2).

Rows live in immutable HFile-style region files on HDFS; a region index
maps row number -> (region file, offset).  The three PerformanceEvaluation
operations the paper measures are implemented over the HDFS client:

* ``scan`` — batched sequential preads (few per-row RPCs);
* ``sequential_read`` — one get per row in key order;
* ``random_read`` — one get per uniformly random row.

Per-operation CPU constants model the region-server work (RPC handling,
KeyValue decoding, block-index lookups).  They dilute the raw HDFS data-path
improvement differently per operation, which is exactly the effect behind
Table 2's 27.3% / 23.6% / 17.3% ordering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.metrics.accounting import CLIENT_APPLICATION
from repro.storage.content import PatternSource


@dataclass
class HBaseOpResult:
    operation: str
    rows: int
    bytes_read: int
    elapsed_seconds: float

    @property
    def throughput_mbps(self) -> float:
        return self.bytes_read / 1e6 / self.elapsed_seconds


class HBaseTable:
    """A fixed-row-width table split into HFile regions on HDFS."""

    def __init__(self, client, name: str = "TestTable",
                 row_bytes: int = 1024, rows_per_region: int = 65_536,
                 scan_cycles_per_row: float = 2_500.0,
                 get_cycles_per_row: float = 420_000.0,
                 random_get_cycles_per_row: float = 800_000.0,
                 seed: int = 7):
        self.client = client
        self.name = name
        self.row_bytes = row_bytes
        self.rows_per_region = rows_per_region
        self.scan_cycles_per_row = scan_cycles_per_row
        self.get_cycles_per_row = get_cycles_per_row
        self.random_get_cycles_per_row = random_get_cycles_per_row
        self.seed = seed
        self.n_rows = 0
        self._streams: dict = {}

    # ----------------------------------------------------------------- layout
    def region_path(self, region: int) -> str:
        return f"/hbase/{self.name}/region-{region:05d}/hfile"

    @property
    def n_regions(self) -> int:
        return -(-self.n_rows // self.rows_per_region) if self.n_rows else 0

    def _locate(self, row: int):
        region = row // self.rows_per_region
        offset = (row % self.rows_per_region) * self.row_bytes
        return region, offset

    # ------------------------------------------------------------------- load
    def load(self, n_rows: int, spread: bool = True):
        """Generator: SequentialWrite — populate the table's region files."""
        if n_rows <= 0:
            raise ValueError(f"row count must be positive: {n_rows}")
        self.n_rows = n_rows
        for region in range(self.n_regions):
            rows_here = min(self.rows_per_region,
                            n_rows - region * self.rows_per_region)
            payload = PatternSource(rows_here * self.row_bytes,
                                    seed=self.seed + region)
            yield from self.client.write_file(
                self.region_path(region), payload, spread=spread)

    # ---------------------------------------------------------------- streams
    def _stream(self, region: int):
        stream = self._streams.get(region)
        if stream is None:
            stream = yield from self.client.open(self.region_path(region))
            self._streams[region] = stream
        return stream

    def close(self) -> None:
        for stream in self._streams.values():
            stream.close()
        self._streams.clear()

    # ------------------------------------------------------------------- scan
    def scan(self, n_rows: Optional[int] = None, batch_rows: int = 1024):
        """Generator: scan rows in key order with batched preads."""
        n_rows = n_rows if n_rows is not None else self.n_rows
        sim = self.client.vm.sim
        vcpu = self.client.vm.vcpu
        start = sim.now
        done = 0
        bytes_read = 0
        while done < n_rows:
            region, offset = self._locate(done)
            rows_in_region = min(
                n_rows - done,
                self.rows_per_region - (done % self.rows_per_region))
            batch = min(batch_rows, rows_in_region)
            stream = yield from self._stream(region)
            piece = yield from stream.pread(offset, batch * self.row_bytes)
            bytes_read += piece.size
            yield from vcpu.run(self.scan_cycles_per_row * batch,
                                CLIENT_APPLICATION)
            done += batch
        return HBaseOpResult("scan", n_rows, bytes_read, sim.now - start)

    # ------------------------------------------------------------------- gets
    def _get(self, row: int, cycles_per_row: float):
        region, offset = self._locate(row)
        stream = yield from self._stream(region)
        piece = yield from stream.pread(offset, self.row_bytes)
        yield from self.client.vm.vcpu.run(cycles_per_row, CLIENT_APPLICATION)
        return piece.size

    def sequential_read(self, n_rows: Optional[int] = None):
        """Generator: one get per row, in key order."""
        n_rows = n_rows if n_rows is not None else self.n_rows
        sim = self.client.vm.sim
        start = sim.now
        bytes_read = 0
        for row in range(n_rows):
            bytes_read += yield from self._get(row, self.get_cycles_per_row)
        return HBaseOpResult("sequential-read", n_rows, bytes_read,
                             sim.now - start)

    def random_read(self, n_rows: int, rng: Optional[random.Random] = None):
        """Generator: gets of uniformly random rows."""
        if self.n_rows == 0:
            raise ValueError("table is empty")
        rng = rng or random.Random(self.seed)
        sim = self.client.vm.sim
        start = sim.now
        bytes_read = 0
        for _ in range(n_rows):
            row = rng.randrange(self.n_rows)
            bytes_read += yield from self._get(
                row, self.random_get_cycles_per_row)
        return HBaseOpResult("random-read", n_rows, bytes_read,
                             sim.now - start)
