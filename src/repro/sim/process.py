"""Simulation processes.

A :class:`Process` wraps a generator and drives it: every object the
generator yields must be an :class:`~repro.sim.events.Event`; the process
suspends until that event fires, then resumes with the event's value (or
with the event's exception raised inside the generator).

A process is itself an event that fires when the generator returns, with the
generator's return value as the event value — so processes can wait on each
other by yielding them.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Generator, Optional

from repro.sim.events import Event, Interrupt, SimulationError, Timeout


class Process(Event):
    """An event-yielding coroutine driven by the simulator."""

    __slots__ = ("_generator", "_send", "_throw", "_target", "_relay",
                 "name")

    def __init__(self, sim: "Simulator", generator: Generator):  # noqa: F821
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        # Bound-method caches: _resume runs once per yield, per process.
        self._send = generator.send
        self._throw = generator.throw
        #: The event this process is currently waiting on (None if running).
        self._target: Optional[Event] = None
        #: Reusable zero-delay relay (see _resume); one per process.
        self._relay: Optional[Event] = None
        self.name = getattr(generator, "__name__", type(generator).__name__)
        if sim.sanitizer is not None:
            sim.sanitizer.register_process(self)
        # Kick the process off via an immediately-scheduled initial event.
        start = Event(sim)
        start.callbacks.append(self._resume)
        start.succeed(None)

    # ------------------------------------------------------------------ flow
    @property
    def is_alive(self) -> bool:
        """True while the generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event (the event
        still fires for other listeners).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self!r}")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defuse()
        interrupt_event.callbacks.append(self._resume)
        self.sim._enqueue(0.0, interrupt_event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        # If we were interrupted while waiting on another event, detach from
        # it so a later firing does not resume us twice.
        sim = self.sim
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            # A timer nobody listens to anymore only stretches the drain
            # horizon; withdraw it from the heap.
            if isinstance(target, Timeout) and not target.callbacks:
                target.cancel()
        self._target = None

        sim._active_process = self
        try:
            if event._ok:
                result = self._send(event._value)
            else:
                event.defuse()
                result = self._throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            self.fail(exc)
            return
        sim._active_process = None

        if not isinstance(result, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {result!r}")
        if result.sim is not sim:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another simulator")
        if result._cancelled:
            raise SimulationError(
                f"process {self.name!r} yielded a cancelled timer {result!r}; "
                f"it would never fire")
        if result.callbacks is not None:
            result.callbacks.append(self._resume)
            self._target = result
        else:
            # Already fired: resume immediately (at the current instant) so
            # yielding a processed event behaves like a zero-delay wait.
            # The relay is private to this process and is processed before
            # the next one can be needed, so one instance is reused — unless
            # an interrupt detached us from it while it was still on the
            # heap (callbacks not yet discarded), in which case it must not
            # be re-armed and a fresh event is minted.
            relay = self._relay
            if relay is None or relay.callbacks is not None:
                relay = Event(sim)
                self._relay = relay
            else:
                relay.callbacks = []
                relay._defused = False
            relay._ok = result._ok
            relay._value = result._value
            if not result._ok:
                relay._defused = True
            relay.callbacks.append(self._resume)
            sim._seq += 1
            wheel = sim._wheel
            if wheel is None:
                heappush(sim._heap, (sim._now, sim._seq, relay, sim._now))
            else:
                wheel.schedule(sim._now, sim._seq, relay, sim._now)
            self._target = relay

    def __repr__(self) -> str:
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"
