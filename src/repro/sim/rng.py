"""Deterministic random-number streams.

Every source of randomness in the simulation draws from a named stream so
that (a) runs are reproducible given a seed, and (b) adding randomness to
one component does not perturb another component's draws.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A registry of independent, deterministically seeded RNG streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG for ``name``, creating it on first use.

        The per-stream seed is derived from the registry seed and the stream
        name via SHA-256, so streams are independent and stable across runs
        and across Python versions (no reliance on ``hash()``).
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} streams={sorted(self._streams)}>"
