"""Discrete-event simulation kernel.

A small, self-contained, generator-based discrete-event simulator in the
style of SimPy.  Simulation *processes* are Python generators that ``yield``
:class:`~repro.sim.events.Event` objects to suspend until those events fire.
The kernel is fully deterministic: events scheduled at equal times are
processed in scheduling order, and all randomness flows through seeded
:class:`~repro.sim.rng.RandomStreams`.

Quick example::

    from repro.sim import Simulator

    sim = Simulator()

    def hello():
        yield sim.timeout(1.5)
        return "done at t=1.5"

    proc = sim.process(hello())
    sim.run()
    assert sim.now == 1.5 and proc.value == "done at t=1.5"
"""

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SanitizerError,
    SimulationError,
    Timeout,
)
from repro.sim.kernel import (Simulator, kernel_stats, legacy_heap,
                              legacy_heap_enabled, reset_kernel_stats,
                              use_legacy_heap)
from repro.sim.process import Process
from repro.sim.resources import (
    Container,
    Lock,
    PriorityResource,
    Request,
    Resource,
    Store,
)
from repro.sim.rng import RandomStreams
from repro.sim.sanitizer import Sanitizer

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Interrupt",
    "Lock",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "Sanitizer",
    "SanitizerError",
    "SimulationError",
    "Simulator",
    "kernel_stats",
    "legacy_heap",
    "legacy_heap_enabled",
    "reset_kernel_stats",
    "use_legacy_heap",
    "Store",
    "Timeout",
]
