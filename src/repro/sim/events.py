"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence with an optional value.  Events
are created against a :class:`~repro.sim.kernel.Simulator` and move through
three states: *pending* (created, not yet triggered), *triggered* (given a
value and placed on the simulator's event heap) and *processed* (callbacks
have run).  Processes suspend on events by ``yield``-ing them.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable, List, Optional

#: Sentinel for "this event has no value yet".
_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (double triggers etc.)."""


class SanitizerError(SimulationError):
    """An invariant violation caught by the runtime sanitizer.

    Raised only when the owning :class:`~repro.sim.kernel.Simulator` was
    created with ``sanitize=True`` (or ``REPRO_SANITIZE=1``); carries a
    readable diagnostic naming the offending processes/resources.
    """


class Interrupt(Exception):
    """Raised inside a process that was interrupted by another process.

    The interrupting party supplies ``cause`` which the interrupted process
    can inspect (e.g. to distinguish preemption from cancellation).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    Events carry a value (set via :meth:`succeed`) or an exception (set via
    :meth:`fail`).  When a failed event is yielded by a process, the
    exception is re-raised inside that process.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "_strace",
                 "_cancelled")

    def __init__(self, sim: "Simulator"):  # noqa: F821 - forward ref
        self.sim = sim
        #: Callables invoked with this event once it is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._defused = False
        self._cancelled = False
        #: (time, process name) of the first trigger — sanitizer mode only.
        self._strace: Optional[tuple] = None

    # ------------------------------------------------------------------ state
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (callbacks list is discarded)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is not yet triggered."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # ------------------------------------------------------------- triggering
    def _already_triggered_error(self) -> SimulationError:
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            return sanitizer.double_trigger_error(self)
        return SimulationError(f"{self!r} already triggered")

    def _note_trigger(self) -> None:
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_trigger(self)

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._value is not _PENDING:
            raise self._already_triggered_error()
        self._ok = True
        self._value = value
        # Inlined _note_trigger + Simulator._enqueue: succeed() fires for
        # every message/grant/completion, so these two calls dominate the
        # kernel's per-event overhead.
        sim = self.sim
        sanitizer = sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_trigger(self)
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        sim._seq += 1
        wheel = sim._wheel
        if wheel is None:
            heappush(sim._heap, (sim._now + delay, sim._seq, self, sim._now))
        else:
            wheel.schedule(sim._now + delay, sim._seq, self, sim._now)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception after ``delay``."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise self._already_triggered_error()
        self._ok = False
        self._value = exception
        self._note_trigger()
        self.sim._enqueue(delay, self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome onto this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel won't crash on it."""
        self._defused = True

    # ------------------------------------------------------------ composition
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):  # noqa: F821
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Fully inlined Event.__init__ + _note_trigger + _enqueue: timeouts
        # are minted for every CPU slice and wire transfer, making this the
        # hottest constructor in the simulator.
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self._cancelled = False
        self._strace = None
        self.delay = delay
        sanitizer = sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_trigger(self)
        sim._seq += 1
        wheel = sim._wheel
        if wheel is None:
            heappush(sim._heap, (sim._now + delay, sim._seq, self, sim._now))
        else:
            wheel.schedule(sim._now + delay, sim._seq, self, sim._now)

    def cancel(self) -> None:
        """Withdraw the timeout before it fires.

        The kernel discards a cancelled timeout when it reaches the head of
        the heap — without advancing the clock or running callbacks.  Used
        by deadline timers whose guarded operation already completed, so a
        won race does not stretch the simulation's drain horizon.  Only
        call this when no process still depends on the timeout firing.

        Cancelled entries are counted; once enough accumulate the kernel
        compacts the heap so long chaos runs stop carrying dead timers.
        """
        if not self._cancelled:
            self._cancelled = True
            self.sim._note_cancelled()

    def __repr__(self) -> str:
        state = " cancelled" if self._cancelled else ""
        return f"<Timeout delay={self.delay}{state}>"


class AbsoluteTimeout(Timeout):
    """A timeout pinned to an absolute instant rather than a relative delay.

    The CPU scheduler's coalesced-burst fast path re-arms timers onto
    previously computed slice-fold boundaries; scheduling those as
    ``now + (when - now)`` would not land exactly on ``when`` (float
    addition is not associative), so this event takes the absolute fire
    time and pushes it onto the heap verbatim.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", when: float, value: Any = None):  # noqa: F821
        if when < sim._now:
            raise SimulationError(
                f"absolute timeout in the past ({when} < {sim._now})")
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self._cancelled = False
        self._strace = None
        self.delay = when - sim._now
        sanitizer = sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_trigger(self)
        sim._seq += 1
        wheel = sim._wheel
        if wheel is None:
            heappush(sim._heap, (when, sim._seq, self, sim._now))
        else:
            wheel.schedule(when, sim._seq, self, sim._now)


class Condition(Event):
    """Waits for a combination of events; base for :class:`AllOf`/:class:`AnyOf`.

    The condition's value is a dict mapping each *triggered* constituent
    event to its value at the moment the condition fired.
    """

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):  # noqa: F821
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("events belong to different simulators")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _satisfied(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied(self._count, len(self._events)):
            self.succeed({e: e._value for e in self._events if e.processed})


class AllOf(Condition):
    """Fires once *all* constituent events have fired."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Fires as soon as *any* constituent event fires."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count >= 1
