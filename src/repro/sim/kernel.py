"""The simulator event loop.

:class:`Simulator` owns the clock and the pending-event structure.  Time is
a float in **seconds**.  Ties are broken by insertion order, making runs
fully deterministic.

Two interchangeable pending-event structures exist behind the
``REPRO_LEGACY_HEAP`` toggle (mirroring ``REPRO_LEGACY_SLICES`` in the CPU
scheduler):

* the **binary heap** reference (``REPRO_LEGACY_HEAP=1``): a single
  ``heapq`` of ``(when, seq, event, scheduled_at)`` tuples — the pre-PR10
  kernel, kept verbatim as the semantic reference;
* the **timer wheel** default (:class:`_Wheel`): a calendar-queue with a
  bucketed near band (O(1) schedule for the dense short-horizon timers the
  CPU scheduler generates) and a heap-ordered far-future overflow band that
  cascades into the near band as the cursor advances.

Both structures drain entries in exactly the same ``(when, seq)`` order, so
every golden timeline is byte-identical between them; the hypothesis suite
``tests/properties/test_wheel_equivalence.py`` pins that equivalence on
random schedule/cancel/reschedule interleavings.

Passing ``sanitize=True`` (or setting ``REPRO_SANITIZE=1`` in the
environment) arms the runtime sanitizer: non-monotonic clock advances,
double-triggered events, leaked resource slots and deadlocked waiters then
raise :class:`~repro.sim.events.SanitizerError` with a diagnostic naming
the offending processes.  See :mod:`repro.sim.sanitizer`.

The loop also keeps cheap occupancy statistics (events processed, cancelled
timers discarded, pending high-water mark, compactions, wheel cascade and
overflow counts) that the profiling harness (``python -m repro profile
--kernel``) reads via :func:`kernel_stats`.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Dict, Generator, Optional

from repro.sim.events import Event, SimulationError, Timeout
from repro.sim.events import _PENDING as _EVENT_PENDING
from repro.sim.process import Process
from repro.sim.sanitizer import Sanitizer

#: Cancelled-entry compaction: rebuild the pending structure once at least
#: this many cancelled timers are outstanding *and* they make up half of it.
_COMPACT_MIN = 512

_legacy_heap = os.environ.get("REPRO_LEGACY_HEAP", "") not in ("", "0")


def use_legacy_heap(enabled: bool) -> None:
    """Route new simulators through the binary-heap reference kernel."""
    global _legacy_heap
    _legacy_heap = bool(enabled)


def legacy_heap_enabled() -> bool:
    """True when the binary-heap reference kernel is selected."""
    return _legacy_heap


class legacy_heap:
    """Context manager: temporarily select the binary-heap reference."""

    def __init__(self, enabled: bool = True):
        self._enabled = enabled
        self._previous = None

    def __enter__(self) -> "legacy_heap":
        self._previous = _legacy_heap
        use_legacy_heap(self._enabled)
        return self

    def __exit__(self, *exc) -> None:
        use_legacy_heap(self._previous)


#: Process-wide kernel counters, summed over every Simulator as its run
#: loop exits (the profiling harness resets/reads these around a workload).
_STATS: Dict[str, int] = {}


def reset_kernel_stats() -> None:
    """Zero the process-wide kernel counters (see :func:`kernel_stats`)."""
    _STATS.update(simulators=0, events_processed=0, events_scheduled=0,
                  cancelled_discarded=0, compactions=0, heap_high_water=0,
                  wheel_cascades=0, wheel_overflow=0, wheel_advances=0,
                  wheel_max_bucket=0)


def kernel_stats() -> Dict[str, int]:
    """Process-wide kernel counters accumulated since the last reset.

    ``events_scheduled`` counts schedule calls, ``events_processed`` counts
    entries whose callbacks ran, ``cancelled_discarded`` counts withdrawn
    timers dropped (at the head or by compaction), and ``heap_high_water``
    is the largest pending-entry count observed (sampled every 256 events,
    so it is a close lower bound, not an exact maximum).  Wheel-kernel runs
    additionally report ``wheel_advances`` (cursor moves to a non-empty
    bucket), ``wheel_cascades`` (entries promoted overflow band -> near
    band), ``wheel_overflow`` (entries scheduled beyond the near horizon)
    and ``wheel_max_bucket`` (largest bucket sorted).
    """
    return dict(_STATS)


reset_kernel_stats()

#: Bucket-index sentinel for times too large to index (inf and beyond the
#: integer-safe product range); such entries share one far-future bucket,
#: inside which the full ``(when, seq)`` sort still orders them exactly.
_FARK = 1 << 62


class _Wheel:
    """Calendar-queue pending-event structure (the default kernel).

    Entries are the same ``(when, seq, event, scheduled_at)`` tuples the
    heap kernel uses.  An entry's absolute bucket index is
    ``int(when * inv_width)`` — monotone non-decreasing in ``when``, so
    bucket order respects time order and entries that compare equal on
    ``when`` always share a bucket, where a plain tuple sort restores the
    exact ``(when, seq)`` drain order.

    Bands:

    * **near band** — ``nbuckets`` rotating slots covering
      ``[cursor, cursor + nbuckets)`` bucket indices; appends are O(1) and
      each bucket is sorted lazily once, when the cursor enters it.
      Non-empty buckets register their absolute index in ``bucket_heap`` so
      sparse regions are skipped without scanning empty slots.
    * **overflow band** — a binary heap holding entries beyond the near
      horizon; runs of eligible entries cascade into the near band as the
      cursor approaches (amortized one move per entry).

    Entries landing at or behind the cursor (same-instant scheduling while
    draining, or test-injected past entries) insort into the *current*
    bucket at the drain position, preserving global order.
    """

    __slots__ = ("inv_width", "nbuckets", "mask", "buckets", "cursor",
                 "cur", "pos", "bucket_heap", "overflow", "size",
                 "cascades", "overflow_pushes", "advances", "max_bucket")

    def __init__(self, width_bits: int = 14, bucket_bits: int = 12):
        #: Bucket width is 2**-width_bits seconds (default ~61us): dense
        #: slice/wire timers land a handful per bucket, and the multiply by
        #: an exact power of two keeps the index computation cheap.
        self.inv_width = float(1 << width_bits)
        self.nbuckets = 1 << bucket_bits
        self.mask = self.nbuckets - 1
        self.buckets = [[] for _ in range(self.nbuckets)]
        self.cursor = 0
        self.cur: list = []
        self.pos = 0
        #: Min-heap of absolute bucket indices with (possibly stale)
        #: pending entries; stale indices are discarded on pop.
        self.bucket_heap: list = []
        self.overflow: list = []
        self.size = 0
        self.cascades = 0
        self.overflow_pushes = 0
        self.advances = 0
        self.max_bucket = 0

    def _index(self, when: float) -> int:
        x = when * self.inv_width
        return int(x) if x < 1e18 else _FARK

    def schedule(self, when: float, seq: int, event, scheduled_at: float) -> None:
        """Place one entry; the wheel-kernel analogue of ``heappush``."""
        x = when * self.inv_width
        k = int(x) if x < 1e18 else _FARK
        cursor = self.cursor
        if k <= cursor:
            # Sub-bucket-width timers land in the bucket being drained;
            # monotone schedulers append at the tail, the rest insort at
            # the drain position.
            cur = self.cur
            entry = (when, seq, event, scheduled_at)
            if not cur or cur[-1] < entry:
                cur.append(entry)
            else:
                insort(cur, entry, self.pos)
        elif k < cursor + self.nbuckets:
            slot = self.buckets[k & self.mask]
            if not slot:
                heappush(self.bucket_heap, k)
            slot.append((when, seq, event, scheduled_at))
        else:
            heappush(self.overflow, (when, seq, event, scheduled_at))
            self.overflow_pushes += 1
        self.size += 1

    def _advance(self) -> bool:
        """Move the cursor to the next non-empty bucket (sorting it);
        cascades eligible overflow entries first.  False when drained."""
        bucket_heap = self.bucket_heap
        overflow = self.overflow
        buckets = self.buckets
        mask = self.mask
        while True:
            while bucket_heap and bucket_heap[0] <= self.cursor:
                heappop(bucket_heap)
            if overflow:
                head_k = self._index(overflow[0][0])
                nxt = bucket_heap[0] if bucket_heap else None
                if nxt is None:
                    # Near band empty: jump the cursor to the overflow head
                    # and pull in the band-wide run that starts there.
                    self.cursor = head_k - 1
                    limit = head_k + self.nbuckets
                elif head_k <= nxt:
                    # Entries at/before the next bucket must land in their
                    # buckets before that bucket is sealed and sorted.
                    limit = nxt + 1
                else:
                    limit = None
                if limit is not None:
                    moved = 0
                    while overflow:
                        entry = overflow[0]
                        k = self._index(entry[0])
                        if k >= limit:
                            break
                        heappop(overflow)
                        slot = buckets[k & mask]
                        if not slot:
                            heappush(bucket_heap, k)
                        slot.append(entry)
                        moved += 1
                    self.cascades += moved
                    continue
            if not bucket_heap:
                return False
            k = heappop(bucket_heap)
            slot = k & mask
            bucket = buckets[slot]
            if not bucket:
                continue  # emptied by compaction; index went stale
            buckets[slot] = []
            bucket.sort()
            self.cursor = k
            self.cur = bucket
            self.pos = 0
            self.advances += 1
            if len(bucket) > self.max_bucket:
                self.max_bucket = len(bucket)
            return True

    def next_entry(self):
        """The next entry in drain order (cancelled included), without
        consuming it; ``None`` when the wheel is empty."""
        pos = self.pos
        cur = self.cur
        if pos < len(cur):
            return cur[pos]
        if self._advance():
            return self.cur[0]
        return None

    def compact(self) -> int:
        """Drop cancelled entries everywhere; returns the number removed."""
        removed = 0
        cur = self.cur
        pos = self.pos
        live = [entry for entry in cur[pos:] if not entry[2]._cancelled]
        removed += len(cur) - pos - len(live)
        self.cur = live
        self.pos = 0
        buckets = self.buckets
        for slot, bucket in enumerate(buckets):
            if bucket:
                keep = [entry for entry in bucket
                        if not entry[2]._cancelled]
                if len(keep) != len(bucket):
                    removed += len(bucket) - len(keep)
                    buckets[slot] = keep
        overflow = [entry for entry in self.overflow
                    if not entry[2]._cancelled]
        removed += len(self.overflow) - len(overflow)
        heapify(overflow)
        self.overflow = overflow
        self.size -= removed
        return removed


class Simulator:
    """Discrete-event simulator: clock, pending-event structure, run loop."""

    def __init__(self, sanitize: Optional[bool] = None) -> None:
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        self._now: float = 0.0
        self._heap: list = []
        #: Timer-wheel pending structure, or ``None`` under the
        #: ``REPRO_LEGACY_HEAP`` reference (then ``_heap`` is live).
        self._wheel: Optional[_Wheel] = None if _legacy_heap else _Wheel()
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        #: Simulated time at which the pending entry currently being
        #: processed was scheduled (pushed), or ``None`` outside event
        #: processing.  Tie-breaking consumers (the CPU scheduler's
        #: coalesced-burst commit) use it to decide whether the active
        #: event would have fired before or after a timer the fast path
        #: never minted.
        self._active_sched_time: Optional[float] = None
        #: Cancelled timers still pending (compaction trigger).
        self._ncancelled: int = 0
        #: Per-simulator counters mirrored into the module totals on drain.
        self.events_processed: int = 0
        self.cancelled_discarded: int = 0
        self.compactions: int = 0
        self.heap_high_water: int = 0
        self._flushed_seq: int = 0
        #: Runtime invariant checker; ``None`` unless sanitize mode is on.
        self.sanitizer: Optional[Sanitizer] = (
            Sanitizer(self) if sanitize else None)
        _STATS["simulators"] += 1

    # ----------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # ------------------------------------------------------------- factories
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator)

    # ------------------------------------------------------------ scheduling
    def _enqueue(self, delay: float, event: Event) -> None:
        """Schedule a triggered event ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self._seq += 1
        wheel = self._wheel
        if wheel is None:
            heappush(self._heap,
                     (self._now + delay, self._seq, event, self._now))
        else:
            wheel.schedule(self._now + delay, self._seq, event, self._now)

    def schedule_at(self, when: float, event: Event) -> None:
        """Schedule a triggered event at absolute time ``when``.

        Unlike :meth:`_enqueue` this avoids the ``now + (when - now)``
        round-trip, so a re-armed timer lands *exactly* on a previously
        computed fold boundary (float addition is not associative).
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past ({when} < {self._now})")
        self._seq += 1
        wheel = self._wheel
        if wheel is None:
            heappush(self._heap, (when, self._seq, event, self._now))
        else:
            wheel.schedule(when, self._seq, event, self._now)

    def _push_entry(self, entry) -> None:
        """Place a raw ``(when, seq, event, scheduled_at)`` entry directly.

        Test/diagnostic hook, kernel-agnostic: the heap takes it verbatim;
        the wheel clamps a past-time entry into the current bucket so it
        drains next (where sanitize mode then reports the non-monotonic
        clock, exactly as the heap reference would).
        """
        wheel = self._wheel
        if wheel is None:
            heappush(self._heap, entry)
        else:
            wheel.schedule(*entry)

    def _quiet_at(self, now: float) -> bool:
        """True when no pending entry (cancelled included) is due at or
        before ``now`` — the CPU scheduler's ceremony-elision guard."""
        wheel = self._wheel
        if wheel is None:
            heap = self._heap
            return not heap or heap[0][0] > now
        entry = wheel.next_entry()
        return entry is None or entry[0] > now

    def _pending_count(self) -> int:
        """Number of pending entries (cancelled included)."""
        wheel = self._wheel
        return len(self._heap) if wheel is None else wheel.size

    def _note_cancelled(self) -> None:
        """Bookkeeping for :meth:`Timeout.cancel`; may trigger compaction."""
        n = self._ncancelled + 1
        self._ncancelled = n
        if n >= _COMPACT_MIN and n + n >= self._pending_count():
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the pending structure (in place: the
        run loops hold a reference to it)."""
        wheel = self._wheel
        if wheel is None:
            heap = self._heap
            live = [entry for entry in heap if not entry[2]._cancelled]
            removed = len(heap) - len(live)
            heap[:] = live
            heapify(heap)
        else:
            removed = wheel.compact()
        self._ncancelled = 0
        self.compactions += 1
        self.cancelled_discarded += removed
        _STATS["compactions"] += 1
        _STATS["cancelled_discarded"] += removed

    # ---------------------------------------------------------------- runner
    def _drain(self, until: Optional[float] = None,
               wait: Optional[Event] = None) -> bool:
        """The one event-loop body behind :meth:`run` and
        :meth:`run_until_complete`.

        Pops and fires events until the pending structure empties, the next
        event lies beyond ``until``, or ``wait`` triggers.  Returns ``True``
        if the loop stopped because a bound was reached, ``False`` if it
        drained dry.
        """
        if self._wheel is not None:
            return self._drain_wheel(until, wait)
        heap = self._heap
        sanitizer = self.sanitizer
        pop = heappop
        pending = _EVENT_PENDING
        processed = 0
        discarded = 0
        high_water = self.heap_high_water
        try:
            while heap:
                if wait is not None and wait._value is not pending:
                    return True
                if until is not None and heap[0][0] > until:
                    return True
                when, _, event, scheduled_at = pop(heap)
                if event._cancelled:
                    discarded += 1
                    continue
                if sanitizer is not None and when < self._now:
                    raise sanitizer.non_monotonic_error(when)
                self._now = when
                self._active_sched_time = scheduled_at
                processed += 1
                if not processed & 255:
                    size = len(heap)
                    if size > high_water:
                        high_water = size
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return False
        finally:
            self._active_sched_time = None
            self.events_processed += processed
            self.cancelled_discarded += discarded
            self._ncancelled = max(0, self._ncancelled - discarded)
            if high_water > self.heap_high_water:
                self.heap_high_water = high_water
            _STATS["events_processed"] += processed
            _STATS["cancelled_discarded"] += discarded
            _STATS["events_scheduled"] += self._seq - self._flushed_seq
            self._flushed_seq = self._seq
            if high_water > _STATS["heap_high_water"]:
                _STATS["heap_high_water"] = high_water

    def _drain_wheel(self, until: Optional[float] = None,
                     wait: Optional[Event] = None) -> bool:
        """:meth:`_drain` over the timer wheel — same loop, same stats.

        The bucket walk is inlined (no :meth:`_Wheel.next_entry` call per
        event) and the wheel's ``size`` is flushed in batches at the
        high-water sample points; callbacks that schedule or cancel during
        processing see ``wheel.cur``/``wheel.pos`` current because both are
        written back before any callback runs.
        """
        wheel = self._wheel
        sanitizer = self.sanitizer
        pending = _EVENT_PENDING
        processed = 0
        discarded = 0
        flushed = 0
        bounded = wait is not None or until is not None
        high_water = self.heap_high_water
        cur = wheel.cur
        pos = wheel.pos
        try:
            while True:
                try:
                    entry = cur[pos]
                except IndexError:
                    wheel.pos = pos
                    if not wheel._advance():
                        return False
                    cur = wheel.cur
                    pos = 0
                    entry = cur[0]
                when, _, event, scheduled_at = entry
                if bounded:
                    if wait is not None and wait._value is not pending:
                        return True
                    if until is not None and when > until:
                        return True
                pos += 1
                if event._cancelled:
                    discarded += 1
                    continue
                if sanitizer is not None and when < self._now:
                    wheel.pos = pos
                    raise sanitizer.non_monotonic_error(when)
                self._now = when
                self._active_sched_time = scheduled_at
                processed += 1
                if not processed & 255:
                    wheel.size -= processed + discarded - flushed
                    flushed = processed + discarded
                    if wheel.size > high_water:
                        high_water = wheel.size
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    # Sync the drain position first: callbacks may schedule
                    # same-instant entries (insort at the position), cancel,
                    # or compact.
                    wheel.pos = pos
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if wheel.cur is not cur:
                        # A callback compacted the wheel (current bucket
                        # was rebuilt): drop the stale view.
                        cur = wheel.cur
                        pos = wheel.pos
                elif not event._ok and not event._defused:
                    wheel.pos = pos
                    raise event._value
        finally:
            if wheel.cur is cur:
                wheel.pos = pos
            wheel.size -= processed + discarded - flushed
            self._active_sched_time = None
            self.events_processed += processed
            self.cancelled_discarded += discarded
            self._ncancelled = max(0, self._ncancelled - discarded)
            if high_water > self.heap_high_water:
                self.heap_high_water = high_water
            _STATS["events_processed"] += processed
            _STATS["cancelled_discarded"] += discarded
            _STATS["events_scheduled"] += self._seq - self._flushed_seq
            self._flushed_seq = self._seq
            if high_water > _STATS["heap_high_water"]:
                _STATS["heap_high_water"] = high_water
            if wheel.cascades:
                _STATS["wheel_cascades"] += wheel.cascades
                wheel.cascades = 0
            if wheel.overflow_pushes:
                _STATS["wheel_overflow"] += wheel.overflow_pushes
                wheel.overflow_pushes = 0
            if wheel.advances:
                _STATS["wheel_advances"] += wheel.advances
                wheel.advances = 0
            if wheel.max_bucket > _STATS["wheel_max_bucket"]:
                _STATS["wheel_max_bucket"] = wheel.max_bucket

    def run(self, until: Optional[float] = None) -> None:
        """Run until no events remain, or until simulated time ``until``.

        When ``until`` is given the clock is advanced exactly to it even if
        no event fires at that instant.  In sanitize mode a fully drained
        run is checked for quiescence on *both* paths (a bounded run that
        outlives every event must not hide leaked waiters).
        """
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"until={until} is in the past (now={self._now})")
            bounded = self._drain(until=until)
            self._now = until
            if not bounded and self.sanitizer is not None:
                self.sanitizer.check_quiescence()
            return
        self._drain()
        if self.sanitizer is not None:
            self.sanitizer.check_quiescence()

    def run_until_complete(self, process: Process) -> Any:
        """Run until ``process`` finishes; return its value (or re-raise)."""
        self._drain(wait=process)
        if process._value is _EVENT_PENDING:
            if self.sanitizer is not None:
                raise self.sanitizer.deadlock_error(process)
            raise SimulationError(
                "event heap exhausted before process completed (deadlock?)")
        if not process.ok:
            process.defuse()
            raise process._value
        return process.value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        wheel = self._wheel
        if wheel is None:
            heap = self._heap
            while heap and heap[0][2]._cancelled:
                heappop(heap)
                self.cancelled_discarded += 1
                _STATS["cancelled_discarded"] += 1
                if self._ncancelled:
                    self._ncancelled -= 1
            return heap[0][0] if heap else float("inf")
        while True:
            entry = wheel.next_entry()
            if entry is None:
                return float("inf")
            if entry[2]._cancelled:
                wheel.pos += 1
                wheel.size -= 1
                self.cancelled_discarded += 1
                _STATS["cancelled_discarded"] += 1
                if self._ncancelled:
                    self._ncancelled -= 1
                continue
            return entry[0]

    def __repr__(self) -> str:
        return f"<Simulator now={self._now} pending={self._pending_count()}>"
