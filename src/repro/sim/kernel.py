"""The simulator event loop.

:class:`Simulator` owns the clock and the event heap.  Time is a float in
**seconds**.  Ties are broken by insertion order, making runs fully
deterministic.

Passing ``sanitize=True`` (or setting ``REPRO_SANITIZE=1`` in the
environment) arms the runtime sanitizer: non-monotonic clock advances,
double-triggered events, leaked resource slots and deadlocked waiters then
raise :class:`~repro.sim.events.SanitizerError` with a diagnostic naming
the offending processes.  See :mod:`repro.sim.sanitizer`.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Any, Generator, Optional

from repro.sim.events import Event, SimulationError, Timeout
from repro.sim.events import _PENDING as _EVENT_PENDING
from repro.sim.process import Process
from repro.sim.sanitizer import Sanitizer


class Simulator:
    """Discrete-event simulator: clock, event heap, and run loop."""

    def __init__(self, sanitize: Optional[bool] = None) -> None:
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        self._now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        #: Runtime invariant checker; ``None`` unless sanitize mode is on.
        self.sanitizer: Optional[Sanitizer] = (
            Sanitizer(self) if sanitize else None)

    # ----------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # ------------------------------------------------------------- factories
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator)

    # ------------------------------------------------------------ scheduling
    def _enqueue(self, delay: float, event: Event) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self._seq += 1
        heappush(self._heap, (self._now + delay, self._seq, event))

    def _step(self) -> None:
        """Process the next event on the heap."""
        when, _, event = heappop(self._heap)
        if event._cancelled:
            # A withdrawn timer (e.g. a deadline whose operation finished):
            # discard without advancing the clock or running callbacks.
            return
        if self.sanitizer is not None and when < self._now:
            raise self.sanitizer.non_monotonic_error(when)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    # ---------------------------------------------------------------- runner
    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap empties, or until simulated time ``until``.

        When ``until`` is given the clock is advanced exactly to it even if
        no event fires at that instant.
        """
        heap = self._heap
        sanitizer = self.sanitizer
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"until={until} is in the past (now={self._now})")
            while heap and heap[0][0] <= until:
                self._step()
            self._now = until
            return
        # Inlined _step loop: one bound-method call per event is measurable
        # at the multi-hundred-thousand-event scale of a sweep cell.
        pop = heappop
        while heap:
            when, _, event = pop(heap)
            if event._cancelled:
                continue
            if sanitizer is not None and when < self._now:
                raise sanitizer.non_monotonic_error(when)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        if sanitizer is not None:
            sanitizer.check_quiescence()

    def run_until_complete(self, process: Process) -> Any:
        """Run until ``process`` finishes; return its value (or re-raise)."""
        heap = self._heap
        sanitizer = self.sanitizer
        pop = heappop
        pending = _EVENT_PENDING
        while process._value is pending:
            if not heap:
                if sanitizer is not None:
                    raise sanitizer.deadlock_error(process)
                raise SimulationError(
                    "event heap exhausted before process completed (deadlock?)")
            when, _, event = pop(heap)
            if event._cancelled:
                continue
            if sanitizer is not None and when < self._now:
                raise sanitizer.non_monotonic_error(when)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        if not process.ok:
            process.defuse()
            raise process._value
        return process.value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        while self._heap and self._heap[0][2]._cancelled:
            heappop(self._heap)
        return self._heap[0][0] if self._heap else float("inf")

    def __repr__(self) -> str:
        return f"<Simulator now={self._now} pending={len(self._heap)}>"
