"""The simulator event loop.

:class:`Simulator` owns the clock and the event heap.  Time is a float in
**seconds**.  Ties are broken by insertion order, making runs fully
deterministic.

Passing ``sanitize=True`` (or setting ``REPRO_SANITIZE=1`` in the
environment) arms the runtime sanitizer: non-monotonic clock advances,
double-triggered events, leaked resource slots and deadlocked waiters then
raise :class:`~repro.sim.events.SanitizerError` with a diagnostic naming
the offending processes.  See :mod:`repro.sim.sanitizer`.

The loop also keeps cheap occupancy statistics (events processed, cancelled
timers discarded, heap high-water mark, compactions) that the profiling
harness (``python -m repro profile``) reads via :func:`kernel_stats`.
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from typing import Any, Dict, Generator, Optional

from repro.sim.events import Event, SimulationError, Timeout
from repro.sim.events import _PENDING as _EVENT_PENDING
from repro.sim.process import Process
from repro.sim.sanitizer import Sanitizer

#: Cancelled-entry compaction: rebuild the heap once at least this many
#: cancelled timers are outstanding *and* they make up half the heap.
_COMPACT_MIN = 512

#: Process-wide kernel counters, summed over every Simulator as its run
#: loop exits (the profiling harness resets/reads these around a workload).
_STATS: Dict[str, int] = {}


def reset_kernel_stats() -> None:
    """Zero the process-wide kernel counters (see :func:`kernel_stats`)."""
    _STATS.update(simulators=0, events_processed=0, events_scheduled=0,
                  cancelled_discarded=0, compactions=0, heap_high_water=0)


def kernel_stats() -> Dict[str, int]:
    """Process-wide kernel counters accumulated since the last reset.

    ``events_scheduled`` counts heap pushes, ``events_processed`` counts
    pops whose callbacks ran, ``cancelled_discarded`` counts withdrawn
    timers dropped (at the head or by compaction), and ``heap_high_water``
    is the largest heap size observed (sampled every 256 events, so it is
    a close lower bound, not an exact maximum).
    """
    return dict(_STATS)


reset_kernel_stats()


class Simulator:
    """Discrete-event simulator: clock, event heap, and run loop."""

    def __init__(self, sanitize: Optional[bool] = None) -> None:
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        self._now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        #: Simulated time at which the heap entry currently being processed
        #: was scheduled (pushed), or ``None`` outside event processing.
        #: Tie-breaking consumers (the CPU scheduler's coalesced-burst
        #: commit) use it to decide whether the active event would have
        #: fired before or after a timer the fast path never minted.
        self._active_sched_time: Optional[float] = None
        #: Cancelled timers still sitting on the heap (compaction trigger).
        self._ncancelled: int = 0
        #: Per-simulator counters mirrored into the module totals on drain.
        self.events_processed: int = 0
        self.cancelled_discarded: int = 0
        self.compactions: int = 0
        self.heap_high_water: int = 0
        self._flushed_seq: int = 0
        #: Runtime invariant checker; ``None`` unless sanitize mode is on.
        self.sanitizer: Optional[Sanitizer] = (
            Sanitizer(self) if sanitize else None)
        _STATS["simulators"] += 1

    # ----------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # ------------------------------------------------------------- factories
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator)

    # ------------------------------------------------------------ scheduling
    def _enqueue(self, delay: float, event: Event) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self._seq += 1
        heappush(self._heap, (self._now + delay, self._seq, event, self._now))

    def schedule_at(self, when: float, event: Event) -> None:
        """Place a triggered event on the heap at absolute time ``when``.

        Unlike :meth:`_enqueue` this avoids the ``now + (when - now)``
        round-trip, so a re-armed timer lands *exactly* on a previously
        computed fold boundary (float addition is not associative).
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past ({when} < {self._now})")
        self._seq += 1
        heappush(self._heap, (when, self._seq, event, self._now))

    def _note_cancelled(self) -> None:
        """Bookkeeping for :meth:`Timeout.cancel`; may compact the heap."""
        n = self._ncancelled + 1
        self._ncancelled = n
        if n >= _COMPACT_MIN and n + n >= len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (in place: the run loops
        hold a reference to the heap list)."""
        heap = self._heap
        live = [entry for entry in heap if not entry[2]._cancelled]
        removed = len(heap) - len(live)
        heap[:] = live
        heapify(heap)
        self._ncancelled = 0
        self.compactions += 1
        self.cancelled_discarded += removed
        _STATS["compactions"] += 1
        _STATS["cancelled_discarded"] += removed

    # ---------------------------------------------------------------- runner
    def _drain(self, until: Optional[float] = None,
               wait: Optional[Event] = None) -> bool:
        """The one event-loop body behind :meth:`run` and
        :meth:`run_until_complete`.

        Pops and fires events until the heap empties, the next event lies
        beyond ``until``, or ``wait`` triggers.  Returns ``True`` if the
        loop stopped because a bound was reached, ``False`` if the heap
        drained dry.
        """
        heap = self._heap
        sanitizer = self.sanitizer
        pop = heappop
        pending = _EVENT_PENDING
        processed = 0
        discarded = 0
        high_water = self.heap_high_water
        try:
            while heap:
                if wait is not None and wait._value is not pending:
                    return True
                if until is not None and heap[0][0] > until:
                    return True
                when, _, event, scheduled_at = pop(heap)
                if event._cancelled:
                    discarded += 1
                    continue
                if sanitizer is not None and when < self._now:
                    raise sanitizer.non_monotonic_error(when)
                self._now = when
                self._active_sched_time = scheduled_at
                processed += 1
                if not processed & 255:
                    size = len(heap)
                    if size > high_water:
                        high_water = size
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return False
        finally:
            self._active_sched_time = None
            self.events_processed += processed
            self.cancelled_discarded += discarded
            self._ncancelled = max(0, self._ncancelled - discarded)
            if high_water > self.heap_high_water:
                self.heap_high_water = high_water
            _STATS["events_processed"] += processed
            _STATS["cancelled_discarded"] += discarded
            _STATS["events_scheduled"] += self._seq - self._flushed_seq
            self._flushed_seq = self._seq
            if high_water > _STATS["heap_high_water"]:
                _STATS["heap_high_water"] = high_water

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap empties, or until simulated time ``until``.

        When ``until`` is given the clock is advanced exactly to it even if
        no event fires at that instant.  In sanitize mode a drained heap is
        checked for quiescence on *both* paths (a bounded run that outlives
        every event must not hide leaked waiters).
        """
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"until={until} is in the past (now={self._now})")
            bounded = self._drain(until=until)
            self._now = until
            if not bounded and self.sanitizer is not None:
                self.sanitizer.check_quiescence()
            return
        self._drain()
        if self.sanitizer is not None:
            self.sanitizer.check_quiescence()

    def run_until_complete(self, process: Process) -> Any:
        """Run until ``process`` finishes; return its value (or re-raise)."""
        self._drain(wait=process)
        if process._value is _EVENT_PENDING:
            if self.sanitizer is not None:
                raise self.sanitizer.deadlock_error(process)
            raise SimulationError(
                "event heap exhausted before process completed (deadlock?)")
        if not process.ok:
            process.defuse()
            raise process._value
        return process.value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heappop(heap)
            self.cancelled_discarded += 1
            _STATS["cancelled_discarded"] += 1
            if self._ncancelled:
                self._ncancelled -= 1
        return heap[0][0] if heap else float("inf")

    def __repr__(self) -> str:
        return f"<Simulator now={self._now} pending={len(self._heap)}>"
