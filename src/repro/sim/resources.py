"""Shared resources: capacity-limited resources, stores, locks, containers.

These follow SimPy's request/release idiom but are trimmed to what the
vRead simulation needs.  All waiters are served FIFO (or by priority for
:class:`PriorityResource`), which keeps the simulation deterministic.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Deque, Iterable, List, Optional

from repro.sim.events import Event, SimulationError


class Request(Event):
    """The event returned by :meth:`Resource.request`; fires on acquisition.

    A request is a context manager, so the release is guaranteed on every
    exit path::

        with resource.request() as req:
            yield req          # wait for the slot
            ...critical section...

    On ``with``-exit a granted slot is released; a request that is still
    queued (e.g. the waiting process was interrupted) is withdrawn instead.
    Manual ``request()``/``release()`` pairing still works but must release
    on all paths — the ``resource-leak`` simlint rule checks this.
    """

    __slots__ = ("resource", "owner")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        #: The process that issued the request (None outside any process).
        self.owner = resource.sim.active_process

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        if self.triggered:
            self.resource.release(self)
        else:
            self.resource.cancel(self)
        return False


class Resource:
    """A resource with ``capacity`` concurrent slots and a FIFO wait queue.

    ``name`` is optional and purely diagnostic: the sanitizer's lock-order
    reports read much better over ``<Resource 'disk'>`` than over bare
    object ids.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1,  # noqa: F821
                 name: Optional[str] = None):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()
        if sim.sanitizer is not None:
            sim.sanitizer.register_resource(self)

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self) -> Request:
        """Request a slot; the returned event fires when granted."""
        req = Request(self)
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_lock_request(self, req)
        if len(self._users) < self.capacity:
            self._users.append(req)
            if sanitizer is not None:
                sanitizer.note_lock_acquired(self, req)
            req.succeed(req)
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Release a previously granted slot and wake the next waiter."""
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that holds no slot")
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_lock_released(self, request)
        if self._queue:
            nxt = self._queue.popleft()
            self._users.append(nxt)
            if sanitizer is not None:
                sanitizer.note_lock_acquired(self, nxt)
            nxt.succeed(nxt)

    def cancel(self, request: Request) -> None:
        """Withdraw a queued (not yet granted) request."""
        try:
            self._queue.remove(request)
        except ValueError:
            raise SimulationError("cancelling a request that is not queued")

    def queued_requests(self) -> Iterable[Request]:
        """The requests currently waiting for a slot (sanitizer reports)."""
        return tuple(self._queue)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (f"<{type(self).__name__}{label} capacity={self.capacity} "
                f"held={self.count} queued={self.queue_length}>")


class PriorityResource(Resource):
    """A resource whose waiters are served lowest-priority-value first."""

    def __init__(self, sim: "Simulator", capacity: int = 1,  # noqa: F821
                 name: Optional[str] = None):
        super().__init__(sim, capacity, name=name)
        self._pqueue: list = []
        self._pseq = 0

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)

    def request(self, priority: int = 0) -> Request:
        req = Request(self)
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_lock_request(self, req)
        if len(self._users) < self.capacity:
            self._users.append(req)
            if sanitizer is not None:
                sanitizer.note_lock_acquired(self, req)
            req.succeed(req)
        else:
            self._pseq += 1
            heappush(self._pqueue, (priority, self._pseq, req))
        return req

    def release(self, request: Request) -> None:
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that holds no slot")
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_lock_released(self, request)
        if self._pqueue:
            _, _, nxt = heappop(self._pqueue)
            self._users.append(nxt)
            if sanitizer is not None:
                sanitizer.note_lock_acquired(self, nxt)
            nxt.succeed(nxt)

    def cancel(self, request: Request) -> None:
        """Withdraw a queued (not yet granted) request."""
        for index, (_, _, queued) in enumerate(self._pqueue):
            if queued is request:
                del self._pqueue[index]
                heapify(self._pqueue)
                return
        raise SimulationError("cancelling a request that is not queued")

    def queued_requests(self) -> Iterable[Request]:
        return tuple(request for _, _, request in self._pqueue)


class Lock:
    """A mutual-exclusion convenience wrapper around a capacity-1 resource.

    Usage inside a process::

        with lock.acquire() as holder:
            yield holder
            ...critical section...
    """

    def __init__(self, sim: "Simulator",  # noqa: F821
                 name: Optional[str] = None):
        self._resource = Resource(sim, capacity=1, name=name)

    @property
    def locked(self) -> bool:
        return self._resource.count > 0

    @property
    def waiters(self) -> int:
        return self._resource.queue_length

    def acquire(self) -> Request:
        return self._resource.request()

    def release(self, request: Request) -> None:
        self._resource.release(request)


class Store:
    """A FIFO buffer of items with optional bounded capacity.

    Used to model socket buffers, virtqueues, and the vRead ring channel.
    ``put`` blocks when full (if bounded); ``get`` blocks when empty.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")):  # noqa: F821
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event fires once it is accepted."""
        event = Event(self.sim)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed(None)
        elif len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Remove the oldest item; the returned event fires with the item."""
        event = Event(self.sim)
        if self.items:
            item = self.items.popleft()
            event.succeed(item)
            if self._putters:
                putter, pending = self._putters.popleft()
                self.items.append(pending)
                putter.succeed(None)
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        if self._putters:
            putter, pending = self._putters.popleft()
            self.items.append(pending)
            putter.succeed(None)
        return item

    def prune_cancelled(self) -> int:
        """Drop queued getters/putters whose waiter was interrupted.

        An interrupted process detaches from the event it was waiting on,
        leaving the event queued here with no listeners; a later ``put``
        would then hand its item to nobody.  Returns how many orphaned
        waiters were removed.
        """
        live_getters = deque(e for e in self._getters if e.callbacks)
        live_putters = deque(p for p in self._putters if p[0].callbacks)
        removed = (len(self._getters) - len(live_getters)
                   + len(self._putters) - len(live_putters))
        self._getters = live_getters
        self._putters = live_putters
        return removed


class Container:
    """A continuous-quantity reservoir (e.g. bytes of buffer space)."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf"),  # noqa: F821
                 init: float = 0.0):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init must be within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = init
        self._putters: Deque[tuple] = deque()  # (event, amount)
        self._getters: Deque[tuple] = deque()  # (event, amount)

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError("put amount must be positive")
        if amount > self.capacity:
            raise SimulationError("put amount exceeds container capacity")
        event = Event(self.sim)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError("get amount must be positive")
        if amount > self.capacity:
            raise SimulationError("get amount exceeds container capacity")
        event = Event(self.sim)
        self._getters.append((event, amount))
        self._settle()
        return event

    def prune_cancelled(self) -> int:
        """Drop queued puts/gets whose waiter was interrupted (see
        :meth:`Store.prune_cancelled`); re-settles afterwards since removing
        a blocked head may unblock the queue."""
        live_getters = deque(g for g in self._getters if g[0].callbacks)
        live_putters = deque(p for p in self._putters if p[0].callbacks)
        removed = (len(self._getters) - len(live_getters)
                   + len(self._putters) - len(live_putters))
        self._getters = live_getters
        self._putters = live_putters
        if removed:
            self._settle()
        return removed

    def _settle(self) -> None:
        """Grant queued puts/gets while progress is possible (FIFO each side)."""
        progressed = True
        while progressed:
            progressed = False
            if self._putters and self._level + self._putters[0][1] <= self.capacity:
                event, amount = self._putters.popleft()
                self._level += amount
                event.succeed(None)
                progressed = True
            if self._getters and self._level >= self._getters[0][1]:
                event, amount = self._getters.popleft()
                self._level -= amount
                event.succeed(amount)
                progressed = True
