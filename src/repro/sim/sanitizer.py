"""Runtime sanitizer for the simulation kernel.

The kernel's determinism and resource-safety claims are enforced by
convention in normal runs; with ``Simulator(sanitize=True)`` (or the
``REPRO_SANITIZE=1`` environment variable) they become machine-checked
invariants.  The sanitizer watches four hazard classes:

* **non-monotonic clock** — an event popped from the heap with a timestamp
  earlier than the current simulation time;
* **double trigger** — ``succeed``/``fail`` called on an event that has
  already been given a value (diagnosed with who triggered it first, and
  when);
* **leaked resource slots** — the event heap drains while a
  :class:`~repro.sim.resources.Resource` slot is still held;
* **deadlock** — the event heap drains while requests are still queued on
  a resource (the waiters can never be woken);
* **lock-order inversion** — a process requests resource B while holding
  resource A after some process has already acquired A while holding B
  (any cycle length).  This is the lockdep-style *would-be* deadlock
  check: it fires at the inverted acquisition, naming both chains with
  their owning processes, **before** the simulation wedges — the post-hoc
  quiescence check above only triggers once the heap has drained.

Every failure raises :class:`~repro.sim.events.SanitizerError` carrying a
readable diagnostic that names the owning/waiting processes.

The sanitizer costs a little memory (it keeps references to every process
and resource), so it is off by default and intended for tests and CI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sim.events import Event, SanitizerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process
    from repro.sim.resources import Request, Resource


class Sanitizer:
    """Collects live kernel objects and checks invariants over them."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._resources: List["Resource"] = []
        self._processes: List["Process"] = []
        # ---- lock-order detector state ----
        #: owner -> resources currently held, in acquisition order.
        self._held: Dict[object, List["Resource"]] = {}
        #: id(A) -> {id(B): (process name, t)}: some process acquired (or
        #: requested) B while holding A.  Edges accumulate for the whole
        #: simulation — order discipline is global, not per-instant.
        self._order: Dict[int, Dict[int, Tuple[str, float]]] = {}
        #: id(resource) -> resource, to render cycle reports.
        self._res_by_id: Dict[int, "Resource"] = {}

    # ---------------------------------------------------------- registration
    def register_resource(self, resource: "Resource") -> None:
        self._resources.append(resource)

    def register_process(self, process: "Process") -> None:
        self._processes.append(process)

    # ----------------------------------------------------------------- hooks
    def _process_name(self, process: Optional["Process"]) -> str:
        return process.name if process is not None else "<no process>"

    def current_process_name(self) -> str:
        return self._process_name(self.sim.active_process)

    def note_trigger(self, event: Event) -> None:
        """Record who triggered ``event`` (for double-trigger diagnostics)."""
        event._strace = (self.sim.now, self.current_process_name())

    def double_trigger_error(self, event: Event) -> SanitizerError:
        first = event._strace
        if first is not None:
            first_time, first_proc = first
            detail = (f"first triggered at t={first_time:g} by "
                      f"process {first_proc!r}")
        else:
            detail = "first triggered before sanitizer tracking began"
        return SanitizerError(
            f"{event!r} triggered twice: {detail}; "
            f"triggered again at t={self.sim.now:g} by process "
            f"{self.current_process_name()!r}")

    def non_monotonic_error(self, when: float) -> SanitizerError:
        return SanitizerError(
            f"non-monotonic clock advance: popped an event scheduled at "
            f"t={when:g} while the clock already reads t={self.sim.now:g}")

    # ----------------------------------------------------------- lock order
    def note_lock_request(self, resource: "Resource",
                          request: "Request") -> None:
        """A process asks for ``resource`` (granted or queued).

        Records the acquisition-order edge ``held -> resource`` for every
        resource the requesting process already holds, and reports a
        would-be deadlock the moment an edge closes a cycle in the global
        acquisition-order graph — i.e. at the *inverted* acquisition,
        before any process actually wedges.
        """
        owner = request.owner
        if owner is None:
            return
        held = self._held.get(owner)
        if not held:
            return
        for prior in held:
            if prior is resource:
                continue  # re-entrant semaphore acquire: no ordering edge
            self._add_order_edge(prior, resource, owner)

    def note_lock_acquired(self, resource: "Resource",
                           request: "Request") -> None:
        """``request`` now holds a slot on ``resource``."""
        owner = request.owner
        if owner is None:
            return
        self._res_by_id[id(resource)] = resource
        self._held.setdefault(owner, []).append(resource)

    def note_lock_released(self, resource: "Resource",
                           request: "Request") -> None:
        """``request``'s slot on ``resource`` was released."""
        owner = request.owner
        if owner is None:
            return
        held = self._held.get(owner)
        if not held:
            return
        for index in range(len(held) - 1, -1, -1):
            if held[index] is resource:
                del held[index]
                break
        if not held:
            del self._held[owner]

    def _add_order_edge(self, first: "Resource", then: "Resource",
                        owner: object) -> None:
        edges = self._order.setdefault(id(first), {})
        if id(then) in edges:
            return
        self._res_by_id[id(first)] = first
        self._res_by_id[id(then)] = then
        cycle = self._find_path(id(then), id(first))
        if cycle is not None:
            raise self._lock_order_error(first, then, owner, cycle)
        edges[id(then)] = (self._process_name(owner), self.sim.now)

    def _find_path(self, start: int, goal: int) -> Optional[List[int]]:
        """Node ids along an existing order path ``start -> ... -> goal``."""
        stack: List[Tuple[int, List[int]]] = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in self._order.get(node, {}):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def _lock_order_error(self, first: "Resource", then: "Resource",
                          owner: object, cycle: List[int]) -> SanitizerError:
        lines = [
            f"lock-order inversion (would-be deadlock) at t={self.sim.now:g}:"
            f" process {self._process_name(owner)!r} requests {then!r} while"
            f" holding {first!r}, but the opposite order is already"
            f" established:",
            f"  this chain:  {self._process_name(owner)!r} holds {first!r},"
            f" requests {then!r} at t={self.sim.now:g}",
        ]
        for here, nxt in zip(cycle, cycle[1:]):
            proc, when = self._order[here][nxt]
            lines.append(
                f"  prior chain: {proc!r} held"
                f" {self._res_by_id[here]!r}, then acquired"
                f" {self._res_by_id[nxt]!r} at t={when:g}")
        lines.append(
            "  acquiring these resources in a consistent global order"
            " removes the deadlock")
        return SanitizerError("\n".join(lines))

    # ----------------------------------------------------------- quiescence
    def _held_slots(self) -> List[Tuple["Resource", "Request"]]:
        return [(res, req) for res in self._resources for req in res._users]

    def _queued_requests(self) -> List[Tuple["Resource", "Request"]]:
        return [(res, req) for res in self._resources
                for req in res.queued_requests()]

    def _waiting_processes(self) -> List["Process"]:
        return [p for p in self._processes
                if p.is_alive and p._target is not None]

    def quiescence_report(self) -> str:
        """Readable dump of held slots, blocked requests, alive processes."""
        lines = [f"at t={self.sim.now:g} with the event heap drained:"]
        held = self._held_slots()
        if held:
            lines.append("  leaked resource slots:")
            for res, req in held:
                lines.append(f"    {res!r}: slot held by process "
                             f"{self._process_name(req.owner)!r}")
        queued = self._queued_requests()
        if queued:
            lines.append("  blocked requests (deadlock - no event can "
                         "ever grant them):")
            for res, req in queued:
                lines.append(f"    {res!r}: process "
                             f"{self._process_name(req.owner)!r} waiting "
                             f"for a slot")
        waiting = self._waiting_processes()
        if waiting:
            lines.append("  processes still alive:")
            for process in waiting:
                lines.append(f"    {process!r} waiting on "
                             f"{process._target!r}")
        return "\n".join(lines)

    def check_quiescence(self) -> None:
        """Raise if the drained simulation left slots held or waiters queued.

        Processes parked on plain events (e.g. idle server loops waiting on
        a :class:`~repro.sim.resources.Store`) are reported but are not, by
        themselves, an error — that is the normal end state of a
        discrete-event run.
        """
        if self._held_slots() or self._queued_requests():
            raise SanitizerError(
                "simulation quiesced with leaked resource slots or "
                "deadlocked waiters\n" + self.quiescence_report())

    def deadlock_error(self, process: "Process") -> SanitizerError:
        """Heap exhausted before ``process`` completed."""
        return SanitizerError(
            f"event heap exhausted before process {process.name!r} "
            f"completed (deadlock)\n" + self.quiescence_report())
