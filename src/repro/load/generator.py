"""The open-loop multi-tenant load generator.

Two execution modes share the same tenant specs, seeding and SLO sinks:

**Cluster mode** (:meth:`LoadGenerator.run_cluster`) drives real HDFS
reads through ``cluster.clients.get(vm=...)``, one client VM per tenant.
Arrivals are scheduled on the simulation clock independently of request
completions (each request runs as its own spawned process), so when the
cluster saturates the queue grows and the latency tail appears — the
behaviour a closed loop structurally cannot show.  A fault plan armed at
measurement start turns the run into a chaos-under-load SLO curve.

**Synthetic mode** (:meth:`LoadGenerator.run_synthetic`) replays the same
seeded arrival streams through an arithmetic M/G/1 pipeline per tenant —
no event kernel, no retained per-request state — which is what the
million-sample RSS-flatness benchmark exercises: memory is bounded by the
sinks alone, independent of sample count.

Determinism: every random draw comes from a named
:class:`~repro.sim.rng.RandomStreams` stream derived from ``(seed,
tenant name)``, so a tenant's traffic does not depend on how many other
tenants run beside it, and any fan-out of sweep points across worker
processes reproduces the serial run byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.load.slo import SloReport, TenantSlo
from repro.load.tenants import TenantSpec
from repro.sim import AllOf
from repro.sim.rng import RandomStreams

__all__ = ["LoadGenerator", "SyntheticService"]


@dataclass(frozen=True)
class SyntheticService:
    """Service-time model for synthetic mode (per-tenant M/G/1 pipeline).

    A request for a *hot* key (rank below ``cached_keys``) costs
    ``cached_seconds`` plus an exponential jitter; any other key pays
    ``base_seconds`` plus a per-byte cost plus jitter — a crude but
    load-faithful stand-in for cache-hit vs disk-read service times.
    """

    base_seconds: float = 4e-3
    per_byte_seconds: float = 2e-9
    cached_seconds: float = 8e-4
    cached_keys: int = 2
    jitter_seconds: float = 5e-4

    def sample(self, rng, key: int, request_bytes: int) -> float:
        if key < self.cached_keys:
            base = self.cached_seconds
        else:
            base = self.base_seconds + request_bytes * self.per_byte_seconds
        if self.jitter_seconds > 0:
            base += rng.expovariate(1.0 / self.jitter_seconds)
        return base


class LoadGenerator:
    """Seeded open-loop arrivals for a set of tenants, reported via SLO sinks."""

    def __init__(self, tenants: Sequence[TenantSpec], seed: int = 0,
                 window_seconds: float = 0.5, bins_per_decade: int = 100):
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique: {names}")
        self.tenants = list(tenants)
        self.seed = seed
        self.window_seconds = window_seconds
        self.bins_per_decade = bins_per_decade
        self.streams = RandomStreams(seed)

    # ------------------------------------------------------------- plumbing
    def _make_slos(self) -> Dict[str, TenantSlo]:
        return {tenant.name: TenantSlo(tenant.name,
                                       tenant.deadline_seconds,
                                       window_seconds=self.window_seconds,
                                       bins_per_decade=self.bins_per_decade)
                for tenant in self.tenants}

    def _stream(self, purpose: str, tenant: TenantSpec):
        return self.streams.stream(f"load.{purpose}.{tenant.name}")

    # ------------------------------------------------------- synthetic mode
    def run_synthetic(self, duration: float,
                      service: Optional[SyntheticService] = None,
                      title: str = "synthetic open-loop run") -> SloReport:
        """Arithmetic open-loop run: no kernel, sink-bounded memory.

        Each tenant is an M/G/1 queue: requests arrive on the tenant's
        seeded open-loop schedule, are served FIFO by one server, and
        their latency (completion minus arrival, queueing included)
        streams straight into the SLO sinks.  Nothing per-request is
        retained, so RSS stays flat from 10^4 to 10^6 samples.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        service = service or SyntheticService()
        slos = self._make_slos()
        for tenant in self.tenants:
            rng_arrivals = self._stream("arrivals", tenant)
            rng_keys = self._stream("keys", tenant)
            rng_service = self._stream("service", tenant)
            keys = tenant.keys()
            slo = slos[tenant.name]
            server_free = 0.0
            for arrival in tenant.arrivals().times(rng_arrivals, duration):
                slo.note_arrival()
                key = keys.pick(rng_keys)
                cost = service.sample(rng_service, key,
                                      tenant.request_bytes)
                start = server_free if server_free > arrival else arrival
                server_free = start + cost
                slo.record(arrival, server_free)
        return SloReport.from_sinks(title, slos, duration)

    # --------------------------------------------------------- cluster mode
    def run_cluster(self, cluster, duration: float, mode: str = "auto",
                    dataset_prefix: str = "/load",
                    arm_faults: bool = False,
                    autoscaler=None,
                    title: str = "open-loop cluster run") -> SloReport:
        """Drive real reads through the cluster's client facade.

        Tenant ``i`` uses ``cluster.client_vms[i]``; its working set is
        ``n_keys`` files under ``<dataset_prefix>/<tenant>/`` written (and
        cache-warmed) before measurement starts.  ``arm_faults=True``
        arms the cluster's fault injector at measurement start, so a
        configured :class:`~repro.faults.plan.FaultPlan` plays out *under
        load* and its damage lands in the SLO report.

        ``autoscaler`` (a :class:`~repro.load.autoscale.Autoscaler`)
        turns the client pool elastic: the in-flight request count is
        sampled on the policy interval and extra client VMs join or
        leave through ``cluster.membership``; tenants then spread their
        requests round-robin across their primary VM plus the extras.
        Without an autoscaler the run takes exactly the static code path.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        if len(cluster.client_vms) < len(self.tenants):
            raise ValueError(
                f"cluster has {len(cluster.client_vms)} client VMs for "
                f"{len(self.tenants)} tenants; build the topology with "
                f"clients={len(self.tenants)} (e.g. "
                f"paper_fig10(clients=N))")
        from repro.storage.content import PatternSource

        sim = cluster.sim
        clients = []
        paths: List[List[str]] = []
        for index, tenant in enumerate(self.tenants):
            vm = cluster.client_vms[index]
            clients.append(cluster.clients.get(mode=mode, vm=vm))
            paths.append([f"{dataset_prefix}/{tenant.name}/k{key}"
                          for key in range(tenant.n_keys)])

        def load_datasets():
            for index, tenant in enumerate(self.tenants):
                for key, path in enumerate(paths[index]):
                    yield from cluster.write_dataset(
                        path,
                        PatternSource(tenant.request_bytes,
                                      seed=1000 + 31 * index + key))

        cluster.run(sim.process(load_datasets()))
        cluster.settle()

        def warm(index: int):
            for path in paths[index]:
                yield from clients[index].read_file(
                    path, self.tenants[index].request_bytes)

        cluster.run_all([sim.process(warm(i))
                         for i in range(len(self.tenants))])

        slos = self._make_slos()
        outstanding: List = []
        epoch = sim.now
        #: Elastic pool state: extra (vm_name, client) pairs the
        #: autoscaler added, per-VM in-flight counts, and per-tenant
        #: round-robin dispatch counters.  All plain bookkeeping — with
        #: no autoscaler none of it is ever consulted.
        extras: List = []
        busy: Dict[str, int] = {}
        dispatch = [0] * len(self.tenants)
        done = [False]

        def pick_client(index: int):
            if not extras:
                return clients[index], None
            lane = dispatch[index] % (1 + len(extras))
            dispatch[index] += 1
            if lane == 0:
                return clients[index], None
            name, client = extras[lane - 1]
            return client, name

        def request(index: int, slo: TenantSlo, key: int):
            arrival = sim.now
            client, vm_name = pick_client(index)
            if vm_name is not None:
                busy[vm_name] = busy.get(vm_name, 0) + 1
            try:
                yield from client.read_file(
                    paths[index][key], self.tenants[index].request_bytes)
            finally:
                if vm_name is not None:
                    busy[vm_name] -= 1
            slo.record(arrival - epoch, sim.now - epoch)

        def drive(index: int, tenant: TenantSpec):
            rng_arrivals = self._stream("arrivals", tenant)
            rng_keys = self._stream("keys", tenant)
            keys = tenant.keys()
            slo = slos[tenant.name]
            clock = 0.0
            for arrival in tenant.arrivals().times(rng_arrivals, duration):
                yield sim.timeout(arrival - clock)
                clock = arrival
                slo.note_arrival()
                # Spawned, not awaited: the open loop never slows down
                # because the cluster is slow — that pressure is the point.
                outstanding.append(
                    sim.process(request(index, slo, keys.pick(rng_keys))))

        def autoscale_loop():
            interval = autoscaler.policy.interval_seconds
            while not done[0]:
                yield sim.timeout(interval)
                if done[0]:
                    return
                outstanding[:] = [p for p in outstanding if p.is_alive]
                inflight = len(outstanding)
                action = autoscaler.decide(sim.now, inflight, len(extras))
                if action > 0:
                    host = cluster.hosts[autoscaler.added
                                         % len(cluster.hosts)]
                    vm = cluster.membership.add_client_vm(
                        f"autoscale{autoscaler.added + 1}", host=host)
                    extras.append(
                        (vm.name, cluster.clients.get(mode=mode, vm=vm)))
                    autoscaler.note(sim.now, "add", vm.name, inflight)
                elif action < 0:
                    # Retire the newest *idle* extra; busy VMs stay until
                    # their in-flight reads drain.
                    for i in range(len(extras) - 1, -1, -1):
                        name, _ = extras[i]
                        if busy.get(name, 0) == 0:
                            extras.pop(i)
                            busy.pop(name, None)
                            cluster.membership.remove_client_vm(name)
                            autoscaler.note(sim.now, "remove", name,
                                            inflight)
                            break

        if arm_faults:
            cluster.faults.arm()
        drivers = [sim.process(drive(i, tenant))
                   for i, tenant in enumerate(self.tenants)]
        if autoscaler is not None:
            sim.process(autoscale_loop())

        def whole_run():
            yield AllOf(sim, drivers)
            done[0] = True
            if outstanding:
                yield AllOf(sim, outstanding)

        cluster.run(sim.process(whole_run()))
        return SloReport.from_sinks(title, slos, duration)
