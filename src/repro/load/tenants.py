"""Tenant specifications and skewed key selection.

A *tenant* is one independent traffic source: an arrival process, a
request-size/key-skew profile, and a latency deadline.  In cluster mode
each tenant drives its own client VM through ``cluster.clients.get``; in
synthetic mode each tenant is an M/G/1-style service pipeline.

Key skew follows the usual Zipf(s) popularity law over a tenant's block
universe: rank-``k`` popularity proportional to ``1 / k**s``.
:class:`ZipfKeys` precomputes the CDF once and samples by binary search,
so a million draws cost a million RNG calls, not a million normalization
sums.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from random import Random
from typing import List, Optional

from repro.load.arrivals import ArrivalProcess, make_arrivals

__all__ = ["TenantSpec", "ZipfKeys", "default_tenants"]


class ZipfKeys:
    """Seedable Zipf(s) sampler over keys ``0..n_keys-1`` (rank order).

    ``s = 0`` degenerates to uniform; larger ``s`` concentrates traffic
    on the first few keys (the "hot blocks" of the skew model).
    """

    def __init__(self, n_keys: int, s: float = 1.0):
        if n_keys < 1:
            raise ValueError(f"need at least one key: {n_keys}")
        if s < 0:
            raise ValueError(f"zipf exponent must be >= 0: {s}")
        self.n_keys = n_keys
        self.s = s
        cdf: List[float] = []
        acc = 0.0
        for rank in range(1, n_keys + 1):
            acc += 1.0 / rank ** s
            cdf.append(acc)
        self._cdf = [value / acc for value in cdf]

    def pick(self, rng: Random) -> int:
        """Draw one key (0-based rank)."""
        return bisect.bisect_left(self._cdf, rng.random())

    def hot_prefix(self, mass: float) -> int:
        """Smallest number of head keys covering ``mass`` of the traffic.

        Tiered storage uses this to size the hot set: with ``mass=0.8``
        the returned prefix of rank-ordered keys absorbs at least 80% of
        the accesses and is the slice worth pinning to fast media.
        """
        if not 0.0 < mass <= 1.0:
            raise ValueError(f"mass must be in (0, 1]: {mass}")
        return min(bisect.bisect_left(self._cdf, mass) + 1, self.n_keys)

    def __repr__(self) -> str:
        return f"<ZipfKeys n={self.n_keys} s={self.s}>"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic contract.

    ``deadline_seconds`` is the per-request latency SLO; a request whose
    open-loop latency (completion minus arrival) exceeds it counts as a
    deadline miss in the :class:`~repro.load.slo.SloReport`.
    """

    name: str
    #: Arrival process kind ("poisson" / "bursty" / "diurnal").
    arrival_kind: str = "poisson"
    #: Mean arrivals per second.
    rate: float = 20.0
    #: Latency SLO per request.
    deadline_seconds: float = 0.05
    #: Bytes requested per read.
    request_bytes: int = 256 << 10
    #: Number of distinct blocks/files in the tenant's working set.
    n_keys: int = 8
    #: Zipf exponent for key popularity (0 = uniform).
    zipf_s: float = 1.2
    #: Extra arrival-process parameters (e.g. burstiness, period).
    arrival_params: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline must be positive: {self.deadline_seconds}")
        if self.request_bytes <= 0:
            raise ValueError(
                f"request size must be positive: {self.request_bytes}")

    def arrivals(self) -> ArrivalProcess:
        return make_arrivals(self.arrival_kind, self.rate,
                             **self.arrival_params)

    def keys(self) -> ZipfKeys:
        return ZipfKeys(self.n_keys, self.zipf_s)


def default_tenants(n_tenants: int, rate: float,
                    deadline_seconds: float = 0.05,
                    arrival_kind: str = "poisson",
                    request_bytes: int = 256 << 10,
                    n_keys: int = 8,
                    zipf_s: float = 1.2,
                    arrival_params: Optional[dict] = None
                    ) -> List[TenantSpec]:
    """A homogeneous tenant population (the sweep experiments' shape)."""
    if n_tenants < 1:
        raise ValueError(f"need at least one tenant: {n_tenants}")
    return [TenantSpec(name=f"tenant{i + 1}",
                       arrival_kind=arrival_kind,
                       rate=rate,
                       deadline_seconds=deadline_seconds,
                       request_bytes=request_bytes,
                       n_keys=n_keys,
                       zipf_s=zipf_s,
                       arrival_params=dict(arrival_params or {}))
            for i in range(n_tenants)]
