"""A deterministic reactive autoscaler for the client VM pool.

The load generator's open loop keeps issuing requests whether or not the
cluster keeps up, so the number of in-flight requests is a direct
congestion signal.  The autoscaler samples it on a fixed interval and
drives the cluster's membership controller: above the scale-up threshold
a new client VM joins the pool (``autoscale1``, ``autoscale2``, ...,
round-robin across hosts); below the scale-down threshold the most
recently added *idle* VM leaves.  A cooldown between actions damps
flapping.

Everything is a pure function of the sampled signal and the policy — no
randomness — so an autoscaled run is exactly as deterministic as a
static one, and ``--jobs N`` sweeps stay byte-identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["AutoscaleEvent", "Autoscaler", "AutoscalerPolicy"]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Thresholds and pacing for :class:`Autoscaler`.

    ``min_extra`` / ``max_extra`` bound the *extra* pool (beyond the
    tenants' primary client VMs).  Thresholds compare against the total
    number of in-flight requests across all tenants.
    """

    min_extra: int = 0
    max_extra: int = 4
    interval_seconds: float = 0.25
    scale_up_outstanding: int = 8
    scale_down_outstanding: int = 2
    cooldown_seconds: float = 0.5

    def __post_init__(self):
        if self.min_extra < 0 or self.max_extra < self.min_extra:
            raise ValueError(
                f"need 0 <= min_extra <= max_extra: "
                f"{self.min_extra}..{self.max_extra}")
        if self.interval_seconds <= 0:
            raise ValueError(
                f"interval must be positive: {self.interval_seconds}")
        if self.scale_down_outstanding >= self.scale_up_outstanding:
            raise ValueError(
                f"scale_down_outstanding ({self.scale_down_outstanding}) "
                f"must be below scale_up_outstanding "
                f"({self.scale_up_outstanding})")


@dataclass(frozen=True)
class AutoscaleEvent:
    """One scaling action: when, which way, which VM, at what load."""

    at: float
    action: str  # "add" | "remove"
    vm: str
    outstanding: int


class Autoscaler:
    """Reactive scaling state machine, driven by the load generator.

    Pass an instance to :meth:`LoadGenerator.run_cluster`; afterwards
    :attr:`events`, :attr:`added` and :attr:`removed` describe what it
    did, and ``cluster.membership.log`` has the cluster-side view.
    """

    def __init__(self, policy: Optional[AutoscalerPolicy] = None):
        self.policy = policy or AutoscalerPolicy()
        self.events: List[AutoscaleEvent] = []
        self.added = 0
        self.removed = 0
        self.samples = 0
        self._last_change: Optional[float] = None

    def decide(self, now: float, outstanding: int, extra_pool: int) -> int:
        """+1 (scale up), -1 (scale down) or 0 for this sample."""
        self.samples += 1
        policy = self.policy
        if (self._last_change is not None
                and now - self._last_change < policy.cooldown_seconds):
            return 0
        if (outstanding >= policy.scale_up_outstanding
                and extra_pool < policy.max_extra):
            return 1
        if (outstanding <= policy.scale_down_outstanding
                and extra_pool > policy.min_extra):
            return -1
        return 0

    def note(self, now: float, action: str, vm: str,
             outstanding: int) -> None:
        """Record an executed action (starts the cooldown window)."""
        self._last_change = now
        self.events.append(AutoscaleEvent(now, action, vm, outstanding))
        if action == "add":
            self.added += 1
        else:
            self.removed += 1

    def __repr__(self) -> str:
        return (f"<Autoscaler added={self.added} removed={self.removed} "
                f"samples={self.samples}>")
