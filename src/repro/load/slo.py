"""Streaming SLO accounting: per-tenant sinks and the final report.

:class:`TenantSlo` is the bundle of metric sinks one tenant streams its
request outcomes into — a :class:`~repro.metrics.sinks.LogHistogram` for
latency quantiles and two :class:`~repro.metrics.sinks.WindowedCounter`
instances (completions and deadline misses) for goodput and violation
timelines.  Memory is bounded regardless of request count, which is what
lets the open-loop harness run millions of samples with flat RSS
(``benchmarks/perf/bench_pr7.py`` gates this).

:class:`SloReport` reduces the sinks to a plain dataclass of primitives:
per-tenant p50/p99/p99.9 latency, goodput, and the SLO-violation time
fraction (the share of fixed windows containing at least one deadline
miss — the Dynamo-style "how much of the day were we out of SLA" view).
Being primitives-only, a report serializes through the runner's
``canonical_json`` unchanged, and per-tenant sketch digests ride along so
determinism gates can compare ``--jobs N`` topologies byte-for-byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.metrics.report import Table
from repro.metrics.sinks import EmptyMetricError, LogHistogram, WindowedCounter

__all__ = ["SloReport", "TenantSlo", "TenantSloSummary"]


class TenantSlo:
    """One tenant's streaming SLO sinks (latency sketch + windows)."""

    __slots__ = ("name", "deadline_seconds", "latency", "completions",
                 "misses", "arrivals", "_total_latency")

    def __init__(self, name: str, deadline_seconds: float,
                 window_seconds: float = 0.5,
                 bins_per_decade: int = 100):
        if deadline_seconds <= 0:
            raise ValueError(
                f"deadline must be positive: {deadline_seconds}")
        self.name = name
        self.deadline_seconds = deadline_seconds
        self.latency = LogHistogram(bins_per_decade=bins_per_decade)
        self.completions = WindowedCounter(window_seconds)
        self.misses = WindowedCounter(window_seconds)
        self.arrivals = 0
        self._total_latency = 0.0

    def note_arrival(self) -> None:
        self.arrivals += 1

    def record(self, arrival: float, completion: float) -> None:
        """Stream one finished request (times in sim seconds)."""
        latency = completion - arrival
        self.latency.observe(latency)
        self._total_latency += latency
        self.completions.observe(completion)
        if latency > self.deadline_seconds:
            self.misses.observe(completion)

    def summarize(self, duration: float) -> "TenantSloSummary":
        """Reduce the sinks to the report row for this tenant."""
        count = self.latency.count
        if count == 0:
            raise EmptyMetricError(f"TenantSlo[{self.name}].summarize")
        n_windows = max(1, math.ceil(duration
                                     / self.completions.window_seconds))
        violated = sum(1 for _, misses in self.misses.windows() if misses)
        goodput = (self.completions.count - self.misses.count) / duration
        to_ms = 1e3
        return TenantSloSummary(
            tenant=self.name,
            arrivals=self.arrivals,
            completions=count,
            deadline_ms=self.deadline_seconds * to_ms,
            mean_ms=self._total_latency / count * to_ms,
            p50_ms=self.latency.quantile(50) * to_ms,
            p99_ms=self.latency.quantile(99) * to_ms,
            p99_9_ms=self.latency.quantile(99.9) * to_ms,
            max_ms=self.latency.maximum * to_ms,
            goodput_rps=goodput,
            miss_count=self.misses.count,
            violation_time_fraction=violated / n_windows,
            latency_digest=self.latency.digest(),
        )


@dataclass(frozen=True)
class TenantSloSummary:
    """One tenant's reduced SLO row (primitives only: serializes as-is)."""

    tenant: str
    arrivals: int
    completions: int
    deadline_ms: float
    mean_ms: float
    p50_ms: float
    p99_ms: float
    p99_9_ms: float
    max_ms: float
    goodput_rps: float
    miss_count: int
    violation_time_fraction: float
    #: SHA-256 of the latency sketch state (determinism gates).
    latency_digest: str


@dataclass(frozen=True)
class SloReport:
    """The open-loop run's SLO outcome, one row per tenant."""

    title: str
    duration_seconds: float
    window_seconds: float
    tenants: Dict[str, TenantSloSummary] = field(default_factory=dict)
    notes: str = ""

    @classmethod
    def from_sinks(cls, title: str, slos: Mapping[str, TenantSlo],
                   duration: float, notes: str = "") -> "SloReport":
        if not slos:
            raise EmptyMetricError("SloReport.from_sinks")
        window = next(iter(slos.values())).completions.window_seconds
        return cls(title=title,
                   duration_seconds=duration,
                   window_seconds=window,
                   tenants={name: slo.summarize(duration)
                            for name, slo in sorted(slos.items())},
                   notes=notes)

    # ------------------------------------------------------------- accessors
    def tenant(self, name: str) -> TenantSloSummary:
        try:
            return self.tenants[name]
        except KeyError:
            raise KeyError(f"no tenant {name!r}; report covers "
                           f"{sorted(self.tenants)}")

    def worst_p99_ms(self) -> float:
        return max(row.p99_ms for row in self.tenants.values())

    def total_goodput_rps(self) -> float:
        return sum(row.goodput_rps for row in self.tenants.values())

    def violation_time_fraction(self) -> float:
        """Mean per-tenant violation fraction (the headline SLO number)."""
        rows = list(self.tenants.values())
        return sum(row.violation_time_fraction for row in rows) / len(rows)

    def digest(self) -> str:
        """Combined per-tenant sketch digest (stable across job counts)."""
        import hashlib
        feed = ";".join(f"{name}:{row.latency_digest}"
                        for name, row in sorted(self.tenants.items()))
        return hashlib.sha256(feed.encode("ascii")).hexdigest()

    def render(self) -> str:
        table = Table(["tenant", "reqs", "p50", "p99", "p99.9", "max",
                       "goodput/s", "misses", "viol.time"],
                      title=self.title)
        for name in sorted(self.tenants):
            row = self.tenants[name]
            table.add_row(
                name, str(row.completions),
                f"{row.p50_ms:.2f}ms", f"{row.p99_ms:.2f}ms",
                f"{row.p99_9_ms:.2f}ms", f"{row.max_ms:.2f}ms",
                f"{row.goodput_rps:.1f}", str(row.miss_count),
                f"{row.violation_time_fraction * 100:.1f}%")
        text = table.render()
        text += (f"\n  open-loop window: {self.duration_seconds:g}s, "
                 f"violation windows of {self.window_seconds:g}s, "
                 f"deadline {next(iter(self.tenants.values())).deadline_ms:g}ms")
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text
