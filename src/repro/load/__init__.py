"""Open-loop multi-tenant load generation with streaming SLO metrics.

See ``docs/load.md`` for the walkthrough.  The package splits into:

- :mod:`repro.load.arrivals` — seeded open-loop arrival processes
  (Poisson, bursty/MMPP, diurnal).
- :mod:`repro.load.tenants` — tenant traffic contracts and Zipf key skew.
- :mod:`repro.load.slo` — streaming per-tenant SLO sinks and the final
  :class:`~repro.load.slo.SloReport`.
- :mod:`repro.load.generator` — the :class:`LoadGenerator` harness
  (cluster mode over ``cluster.clients``, synthetic M/G/1 mode for
  memory/determinism gates).
"""

from repro.load.arrivals import (ArrivalProcess, BurstyArrivals,
                                 DiurnalArrivals, PoissonArrivals,
                                 make_arrivals)
from repro.load.autoscale import (AutoscaleEvent, Autoscaler,
                                  AutoscalerPolicy)
from repro.load.generator import LoadGenerator, SyntheticService
from repro.load.slo import SloReport, TenantSlo, TenantSloSummary
from repro.load.tenants import TenantSpec, ZipfKeys, default_tenants

__all__ = [
    "ArrivalProcess",
    "AutoscaleEvent",
    "Autoscaler",
    "AutoscalerPolicy",
    "BurstyArrivals",
    "DiurnalArrivals",
    "LoadGenerator",
    "PoissonArrivals",
    "SloReport",
    "SyntheticService",
    "TenantSlo",
    "TenantSloSummary",
    "TenantSpec",
    "ZipfKeys",
    "default_tenants",
    "make_arrivals",
]
