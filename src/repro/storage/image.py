"""Virtual disk images.

A :class:`DiskImage` is a VM's virtual drive: a raw image file living on a
host's SSD that contains a guest filesystem.  The guest accesses it through
virtio-blk; the vRead daemon accesses the same image through a read-only
:class:`~repro.storage.loopdev.LoopMount`.

Page-cache keys: the **host** page cache caches image pages under
``(image name, guest inode number, page)``; each **guest** kernel caches
file pages under ``(inode number, page)`` of its own filesystem.  Both views
name the same underlying bytes, so a block pulled in by the datanode VM's
I/O also warms the host cache that vRead later hits — matching the paper's
re-read behaviour.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from repro.storage.filesystem import FileSystem, Inode


class DiskImage:
    """A raw VM disk image: identity + the guest filesystem inside it."""

    def __init__(self, name: str, guest_fs: Optional[FileSystem] = None):
        self.name = name
        self.guest_fs = guest_fs if guest_fs is not None else FileSystem(
            name=f"{name}-fs")
        #: Image-layer fault (snapshot-chain corruption, backing-file loss):
        #: while set, loop mounts of this image fail every lookup so the
        #: vRead path degrades and readers fail over to other replicas.
        self.faulted = False

    def set_faulted(self, faulted: bool) -> None:
        self.faulted = faulted

    def cache_key(self, inode: Inode) -> Tuple[str, int]:
        """Host-page-cache key prefix for a file inside this image."""
        return (self.name, inode.number)

    def __repr__(self) -> str:
        return f"<DiskImage {self.name} gen={self.guest_fs.generation}>"
