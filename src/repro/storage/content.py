"""Byte-content sources: real or lazily generated file contents.

The simulation moves *actual data* so correctness is testable end to end.
Small test files use :class:`LiteralSource` (real bytes in memory);
benchmark files of hundreds of megabytes use :class:`PatternSource`, which
generates any requested range deterministically from a seed — two reads of
the same range always return identical bytes, and the full file never needs
to be materialized.
"""

from __future__ import annotations

import hashlib
from typing import Union


class ByteSource:
    """Abstract offset-addressable, immutable byte content."""

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"negative size {size}")
        self.size = size

    def read(self, offset: int, length: int) -> bytes:
        """Bytes at [offset, offset+length), clamped to the source size."""
        raise NotImplementedError

    def _clamp(self, offset: int, length: int) -> int:
        if offset < 0 or length < 0:
            raise ValueError(f"negative offset/length ({offset}, {length})")
        return max(0, min(length, self.size - offset))

    def checksum(self, chunk: int = 1 << 20) -> str:
        """SHA-256 of the whole content (streamed; safe for lazy sources)."""
        digest = hashlib.sha256()
        offset = 0
        while offset < self.size:
            piece = self.read(offset, min(chunk, self.size - offset))
            digest.update(piece)
            offset += len(piece)
        return digest.hexdigest()


class LiteralSource(ByteSource):
    """Content backed by real bytes in memory."""

    def __init__(self, data: Union[bytes, bytearray]):
        super().__init__(len(data))
        self._data = bytes(data)

    def read(self, offset: int, length: int) -> bytes:
        n = self._clamp(offset, length)
        return self._data[offset:offset + n]

    @property
    def data(self) -> bytes:
        return self._data


class PatternSource(ByteSource):
    """Deterministic pseudo-random content generated on demand.

    The byte at absolute position ``i`` depends only on ``(seed, i)``, so any
    sub-range can be generated independently: block ``i`` of 32 bytes is
    SHA-256(seed, i).
    """

    _BLOCK = 32  # sha256 digest size

    def __init__(self, size: int, seed: int = 0):
        super().__init__(size)
        self.seed = seed
        self._prefix = f"pattern:{seed}:".encode()

    def _block(self, index: int) -> bytes:
        return hashlib.sha256(self._prefix + str(index).encode()).digest()

    def read(self, offset: int, length: int) -> bytes:
        n = self._clamp(offset, length)
        if n == 0:
            return b""
        first = offset // self._BLOCK
        last = (offset + n - 1) // self._BLOCK
        raw = b"".join(self._block(i) for i in range(first, last + 1))
        start = offset - first * self._BLOCK
        return raw[start:start + n]


class ZeroSource(ByteSource):
    """All-zero content (sparse files, quick benchmark filler)."""

    def read(self, offset: int, length: int) -> bytes:
        return b"\x00" * self._clamp(offset, length)


class ConcatSource(ByteSource):
    """Concatenation of sources (used to build files from appended writes)."""

    def __init__(self, parts):
        parts = [p for p in parts if p.size > 0]
        super().__init__(sum(p.size for p in parts))
        self._parts = parts

    def read(self, offset: int, length: int) -> bytes:
        n = self._clamp(offset, length)
        if n == 0:
            return b""
        out = []
        pos = 0
        remaining = n
        cursor = offset
        for part in self._parts:
            if remaining == 0:
                break
            if cursor < pos + part.size:
                inner = cursor - pos
                take = min(remaining, part.size - inner)
                out.append(part.read(inner, take))
                cursor += take
                remaining -= take
            pos += part.size
        return b"".join(out)


class SliceSource(ByteSource):
    """A window into another source (used for HDFS block carving)."""

    def __init__(self, base: ByteSource, offset: int, size: int):
        if offset < 0 or offset + size > base.size:
            raise ValueError("slice out of range")
        super().__init__(size)
        self._base = base
        self._offset = offset

    def read(self, offset: int, length: int) -> bytes:
        n = self._clamp(offset, length)
        return self._base.read(self._offset + offset, n)
