"""Byte-content sources: real or lazily generated file contents.

The simulation moves *actual data* so correctness is testable end to end.
Small test files use :class:`LiteralSource` (real bytes in memory);
benchmark files of hundreds of megabytes use :class:`PatternSource`, which
generates any requested range deterministically from a seed — two reads of
the same range always return identical bytes, and the full file never needs
to be materialized.

Two access styles exist on every source:

* :meth:`ByteSource.read` — returns ``bytes`` (the historical API);
* :meth:`ByteSource.readinto` — fills a caller-supplied buffer
  (``bytearray``/``memoryview``) and returns the byte count.

``readinto`` is the zero-copy data plane: a 64 MB block moves through the
host Python process with one buffer allocation instead of a
join-and-reslice per hop, and :meth:`ByteSource.checksum` streams through a
single reusable buffer (the incremental checksum).  The *simulated* copy
costs are untouched — they are the paper's subject; this is purely about
the wall-clock of the simulator process.

``use_legacy_buffers(True)`` (or ``REPRO_LEGACY_BUFFERS=1``) routes
``read``/``checksum`` through the original ``bytes``-slicing
implementations; the property tests and the PR 3 benchmark harness use the
toggle to prove the two planes are byte-identical and to measure the
speedup honestly.
"""

from __future__ import annotations

import hashlib
import os
from typing import Union

#: Streaming granularity for checksums and fallback readinto paths.
_CHUNK = 1 << 20

_legacy_buffers = os.environ.get("REPRO_LEGACY_BUFFERS", "") not in ("", "0")


def use_legacy_buffers(enabled: bool) -> None:
    """Route read/checksum through the pre-PR3 bytes-slicing code paths."""
    global _legacy_buffers
    _legacy_buffers = bool(enabled)


def legacy_buffers_enabled() -> bool:
    """True when the legacy (join-and-slice) data plane is selected."""
    return _legacy_buffers


class legacy_buffers:
    """Context manager: temporarily select the legacy data plane."""

    def __init__(self, enabled: bool = True):
        self._enabled = enabled
        self._previous = None

    def __enter__(self) -> "legacy_buffers":
        self._previous = _legacy_buffers
        use_legacy_buffers(self._enabled)
        return self

    def __exit__(self, *exc) -> None:
        use_legacy_buffers(self._previous)


class ByteSource:
    """Abstract offset-addressable, immutable byte content."""

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"negative size {size}")
        self.size = size
        #: Memoized full-content checksum (contents are immutable).
        self._checksum_hex = None

    def read(self, offset: int, length: int) -> bytes:
        """Bytes at [offset, offset+length), clamped to the source size."""
        n = self._clamp(offset, length)
        if n == 0:
            return b""
        buf = bytearray(n)
        self.readinto(offset, buf)
        return bytes(buf)

    def readinto(self, offset: int, buf) -> int:
        """Fill ``buf`` with bytes at [offset, offset+len(buf)).

        Returns the number of bytes written (clamped at the source size).
        Subclasses override this with a no-intermediate-allocation
        implementation; the base fallback goes through :meth:`read`.
        """
        view = memoryview(buf)
        n = self._clamp(offset, len(view))
        if n:
            view[:n] = self.read(offset, n)
        return n

    def _clamp(self, offset: int, length: int) -> int:
        if offset < 0 or length < 0:
            raise ValueError(f"negative offset/length ({offset}, {length})")
        return max(0, min(length, self.size - offset))

    # ------------------------------------------------------- view coalescing
    def _view_key(self):
        """``(backing store, absolute offset)`` when this source is a
        contiguous window into another store, else ``None``.

        View sources resolve transitively, so a slice of a slice of an
        inode range all map to the same backing store.
        :class:`ConcatSource` uses this to recognise a run of adjacent
        windows (e.g. the per-chunk slices a vRead daemon streams through
        the ring) as one region of the backing store, so a checksum over
        the concat can reuse the backing store's memoized digest instead
        of regenerating every byte.
        """
        return None

    def _make_range(self, offset: int, size: int) -> "ByteSource":
        """A source covering ``size`` bytes of this store at ``offset``
        (coalescing support; backing stores implement this)."""
        if offset == 0 and size == self.size:
            return self
        return SliceSource(self, offset, size)

    def checksum(self, chunk: int = _CHUNK) -> str:
        """SHA-256 of the whole content (streamed; safe for lazy sources).

        The fast plane streams through one reusable buffer (an incremental
        checksum: no per-chunk bytes objects); results are memoized because
        sources are immutable.
        """
        digest = hashlib.sha256()
        if _legacy_buffers:
            offset = 0
            while offset < self.size:
                piece = self.read(offset, min(chunk, self.size - offset))
                digest.update(piece)
                offset += len(piece)
            return digest.hexdigest()
        if self._checksum_hex is not None:
            return self._checksum_hex
        buf = bytearray(min(chunk, max(1, self.size)))
        view = memoryview(buf)
        offset = 0
        while offset < self.size:
            n = self.readinto(offset, view[:min(chunk, self.size - offset)])
            digest.update(view[:n])
            offset += n
        self._checksum_hex = digest.hexdigest()
        return self._checksum_hex


class LiteralSource(ByteSource):
    """Content backed by real bytes in memory."""

    def __init__(self, data: Union[bytes, bytearray, memoryview]):
        super().__init__(len(data))
        self._data = bytes(data)

    def read(self, offset: int, length: int) -> bytes:
        n = self._clamp(offset, length)
        return self._data[offset:offset + n]

    def readinto(self, offset: int, buf) -> int:
        view = memoryview(buf)
        n = self._clamp(offset, len(view))
        view[:n] = memoryview(self._data)[offset:offset + n]
        return n

    @property
    def data(self) -> bytes:
        return self._data


class PatternSource(ByteSource):
    """Deterministic pseudo-random content generated on demand.

    The byte at absolute position ``i`` depends only on ``(seed, i)``, so any
    sub-range can be generated independently: block ``i`` of 32 bytes is
    SHA-256(seed, i).

    Synthesis is pure sha256, which dominates the wall-clock of any
    workload that streams the same payload more than once (a write pass
    plus checksum-verified read passes).  Sources up to
    ``_MATERIALIZE_CAP`` therefore materialize their content once on
    first fast-plane access and serve every later range as a memcpy; the
    buffer is shared across instances through a per-process cache keyed
    by ``(seed, size)`` (two sweep points with the same payload spec
    synthesize once).  Content is identical either way — the cache holds
    exactly the bytes the streaming synthesis produces — and the legacy
    plane (``REPRO_LEGACY_BUFFERS``) never materializes, so the PR 3
    equivalence harness keeps proving byte-identity.  Larger sources keep
    the original promise: any range on demand, never the whole file.
    """

    _BLOCK = 32  # sha256 digest size

    #: Sources at or under this size serve reads from materialized bytes.
    _MATERIALIZE_CAP = 32 << 20

    #: Per-process cache budget for shared materialized content.
    _CACHE_BUDGET = 256 << 20

    _cache: "dict" = {}          # (seed, size) -> bytes, insertion-ordered
    _cache_bytes = 0

    def __init__(self, size: int, seed: int = 0):
        super().__init__(size)
        self.seed = seed
        self._prefix = f"pattern:{seed}:".encode()
        self._data = None

    def _block(self, index: int) -> bytes:
        return hashlib.sha256(self._prefix + b"%d" % index).digest()

    def _materialize(self) -> bytes:
        """Full content as one shared bytes object (synthesized once)."""
        data = self._data
        if data is not None:
            return data
        cls = PatternSource
        key = (self.seed, self.size)
        data = cls._cache.get(key)
        if data is None:
            buf = bytearray(self.size)
            self._synthesize(0, memoryview(buf))
            data = bytes(buf)
            cls._cache[key] = data
            cls._cache_bytes += len(data)
            while cls._cache_bytes > cls._CACHE_BUDGET and len(cls._cache) > 1:
                oldest = next(iter(cls._cache))
                cls._cache_bytes -= len(cls._cache.pop(oldest))
        self._data = data
        return data

    def read(self, offset: int, length: int) -> bytes:
        n = self._clamp(offset, length)
        if n == 0:
            return b""
        if _legacy_buffers:
            first = offset // self._BLOCK
            last = (offset + n - 1) // self._BLOCK
            raw = b"".join(self._block(i) for i in range(first, last + 1))
            start = offset - first * self._BLOCK
            return raw[start:start + n]
        buf = bytearray(n)
        self.readinto(offset, buf)
        return bytes(buf)

    def readinto(self, offset: int, buf) -> int:
        view = memoryview(buf)
        n = self._clamp(offset, len(view))
        if n == 0:
            return 0
        if not _legacy_buffers and self.size <= self._MATERIALIZE_CAP:
            view[:n] = memoryview(self._materialize())[offset:offset + n]
            return n
        return self._synthesize(offset, view[:n])

    def _synthesize(self, offset: int, view) -> int:
        """Generate bytes at [offset, offset+len(view)) into ``view``."""
        n = len(view)
        sha = hashlib.sha256
        prefix = self._prefix
        block_size = self._BLOCK
        index = offset // block_size
        skip = offset - index * block_size
        pos = 0
        if skip:
            # Leading partial block.
            block = sha(prefix + b"%d" % index).digest()
            take = min(block_size - skip, n)
            view[:take] = block[skip:skip + take]
            pos = take
            index += 1
        whole = (n - pos) // block_size
        if whole:
            # Bulk of the range: C-speed join of whole digests, one copy.
            end = pos + whole * block_size
            view[pos:end] = b"".join(
                sha(prefix + b"%d" % i).digest()
                for i in range(index, index + whole))
            pos = end
            index += whole
        if pos < n:
            # Trailing partial block.
            view[pos:n] = sha(prefix + b"%d" % index).digest()[:n - pos]
        return n

    def checksum(self, chunk: int = _CHUNK) -> str:
        """Stream digests straight into the checksum (no staging buffer)."""
        if _legacy_buffers:
            return super().checksum(chunk)
        if self._checksum_hex is not None:
            return self._checksum_hex
        if self.size <= self._MATERIALIZE_CAP:
            digest = hashlib.sha256(self._materialize())
            self._checksum_hex = digest.hexdigest()
            return self._checksum_hex
        digest = hashlib.sha256()
        sha = hashlib.sha256
        prefix = self._prefix
        blocks_per_chunk = max(1, chunk // self._BLOCK)
        full_blocks = self.size // self._BLOCK
        for start in range(0, full_blocks, blocks_per_chunk):
            stop = min(start + blocks_per_chunk, full_blocks)
            digest.update(b"".join(sha(prefix + b"%d" % i).digest()
                                   for i in range(start, stop)))
        remainder = self.size - full_blocks * self._BLOCK
        if remainder:
            digest.update(
                sha(prefix + b"%d" % full_blocks).digest()[:remainder])
        self._checksum_hex = digest.hexdigest()
        return self._checksum_hex


class ZeroSource(ByteSource):
    """All-zero content (sparse files, quick benchmark filler)."""

    _ZEROS = bytes(_CHUNK)

    def read(self, offset: int, length: int) -> bytes:
        return b"\x00" * self._clamp(offset, length)

    def readinto(self, offset: int, buf) -> int:
        view = memoryview(buf)
        n = self._clamp(offset, len(view))
        zeros = self._ZEROS
        pos = 0
        while pos < n:
            take = min(len(zeros), n - pos)
            view[pos:pos + take] = zeros[:take]
            pos += take
        return n


class ConcatSource(ByteSource):
    """Concatenation of sources (used to build files from appended writes)."""

    def __init__(self, parts):
        parts = [p for p in parts if p.size > 0]
        super().__init__(sum(p.size for p in parts))
        self._parts = parts

    def read(self, offset: int, length: int) -> bytes:
        n = self._clamp(offset, length)
        if n == 0:
            return b""
        if _legacy_buffers:
            out = []
            pos = 0
            remaining = n
            cursor = offset
            for part in self._parts:
                if remaining == 0:
                    break
                if cursor < pos + part.size:
                    inner = cursor - pos
                    take = min(remaining, part.size - inner)
                    out.append(part.read(inner, take))
                    cursor += take
                    remaining -= take
                pos += part.size
            return b"".join(out)
        buf = bytearray(n)
        self.readinto(offset, buf)
        return bytes(buf)

    def readinto(self, offset: int, buf) -> int:
        view = memoryview(buf)
        n = self._clamp(offset, len(view))
        if n == 0:
            return 0
        written = 0
        pos = 0
        cursor = offset
        for part in self._parts:
            if written == n:
                break
            part_size = part.size
            if cursor < pos + part_size:
                inner = cursor - pos
                take = min(n - written, part_size - inner)
                part.readinto(inner, view[written:written + take])
                cursor += take
                written += take
            pos += part_size
        return n

    def _coalesced(self):
        """The parts merged into one window when they are adjacent views
        of the same backing store (``None`` otherwise)."""
        first = self._parts[0]
        key = first._view_key()
        if key is None:
            return None
        backing, start = key
        cursor = start + first.size
        for part in self._parts[1:]:
            part_key = part._view_key()
            if part_key is None or part_key[0] is not backing \
                    or part_key[1] != cursor:
                return None
            cursor += part.size
        return backing._make_range(start, self.size)

    def checksum(self, chunk: int = _CHUNK) -> str:
        # A single-part concat has the part's exact content; reuse (and
        # populate) that source's memoized digest.  Multi-part concats of
        # adjacent windows (a block streamed chunk-by-chunk through a ring)
        # coalesce back into one window of the backing store first.
        if not _legacy_buffers:
            if self._checksum_hex is not None:
                return self._checksum_hex
            if len(self._parts) == 1:
                self._checksum_hex = self._parts[0].checksum(chunk)
                return self._checksum_hex
            merged = self._coalesced() if self._parts else None
            if merged is not None:
                self._checksum_hex = merged.checksum(chunk)
                return self._checksum_hex
        return super().checksum(chunk)


class SliceSource(ByteSource):
    """A window into another source (used for HDFS block carving)."""

    def __init__(self, base: ByteSource, offset: int, size: int):
        if offset < 0 or offset + size > base.size:
            raise ValueError("slice out of range")
        super().__init__(size)
        self._base = base
        self._offset = offset

    def read(self, offset: int, length: int) -> bytes:
        n = self._clamp(offset, length)
        return self._base.read(self._offset + offset, n)

    def readinto(self, offset: int, buf) -> int:
        view = memoryview(buf)
        n = self._clamp(offset, len(view))
        return self._base.readinto(self._offset + offset, view[:n])

    def checksum(self, chunk: int = _CHUNK) -> str:
        # A whole-source window has the base's exact content.
        if self._offset == 0 and self.size == self._base.size \
                and not _legacy_buffers:
            return self._base.checksum(chunk)
        return super().checksum(chunk)

    def _view_key(self):
        base_key = self._base._view_key()
        if base_key is not None:
            backing, base_offset = base_key
            return (backing, base_offset + self._offset)
        return (self._base, self._offset)
