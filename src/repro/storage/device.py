"""The pluggable storage-device API: profiles, service-time models, tiers.

A :class:`DeviceProfile` declares *what a device is* — seek latency,
per-request latency, sequential bandwidth, and queue depth — and
:class:`StorageDevice` turns a profile into a simulated device with a
FIFO/parallel service channel.  Three built-in tiers cover the ablation
space (slow to fast):

* ``hdd``  — rotating media: seek charged on every non-sequential offset,
  modest sequential bandwidth, queue depth 1.
* ``ssd``  — the paper's testbed device: seek-free, constants inherited
  from the :class:`~repro.hostmodel.costs.CostModel` so the default
  cluster stays byte-identical to the original ``SsdDevice`` timeline.
* ``nvme`` — seek-free, multi-queue: ``queue_depth`` requests in service
  concurrently, each at full per-request cost.

The device itself burns no CPU — DMA moves the data; CPU costs of the
layers above (virtio, page cache copies) are charged by those layers.

Fault-injection knobs (driven by :mod:`repro.faults`) live on the shared
base so every tier inherits them uniformly: a *latency factor* scales
service time (noisy-neighbour / flaky-virtual-disk spikes) and a
*failing* device raises :class:`DiskError` on every request, which the
layers above translate into replica failover or a vRead fallback.

Construct devices through :func:`make_device`; the legacy
:class:`~repro.storage.disk.SsdDevice` name survives as a deprecated
alias.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.sim import Resource, Simulator


class DiskError(Exception):
    """An injected (or modelled) device-level I/O error."""


@dataclass(frozen=True)
class DeviceProfile:
    """Declarative description of one storage-device class.

    ``request_latency`` and ``bandwidth_bytes_per_sec`` may be ``None``,
    meaning "inherit the cost model's SSD constants" — that is how the
    default ``ssd`` profile keeps tracking
    :attr:`~repro.hostmodel.costs.CostModel.ssd_request_latency` and
    :attr:`~repro.hostmodel.costs.CostModel.ssd_bandwidth_bytes_per_sec`
    (including sensitivity-sweep overrides) byte-for-byte.
    """

    #: Device-class name ("hdd" / "ssd" / "nvme" / custom).
    tier: str
    #: Seconds charged when a positioned request is not sequential with
    #: the previous one (head movement + rotational delay; 0 = seek-free).
    seek_latency: float = 0.0
    #: Fixed service seconds per request (None = cost model's SSD value).
    request_latency: Optional[float] = None
    #: Sequential transfer rate (None = cost model's SSD value).
    bandwidth_bytes_per_sec: Optional[float] = None
    #: Requests serviced concurrently (1 = strict FIFO serialization).
    queue_depth: int = 1
    #: Speed rank for tier-aware placement (higher = faster media).
    rank: int = 1

    def __post_init__(self):
        if not self.tier:
            raise ValueError("device profile needs a tier name")
        if self.seek_latency < 0:
            raise ValueError(f"negative seek latency: {self.seek_latency}")
        if self.request_latency is not None and self.request_latency < 0:
            raise ValueError(
                f"negative request latency: {self.request_latency}")
        if (self.bandwidth_bytes_per_sec is not None
                and self.bandwidth_bytes_per_sec <= 0):
            raise ValueError(
                f"bandwidth must be positive: {self.bandwidth_bytes_per_sec}")
        if self.queue_depth < 1:
            raise ValueError(f"queue depth must be >= 1: {self.queue_depth}")


#: The paper's testbed SSD; latency/bandwidth inherit the cost model so a
#: calibrated or sensitivity-perturbed CostModel flows through unchanged.
SSD_PROFILE = DeviceProfile(tier="ssd", seek_latency=0.0,
                            request_latency=None,
                            bandwidth_bytes_per_sec=None,
                            queue_depth=1, rank=1)

#: 7.2k-RPM enterprise SATA disk: ~8 ms average seek + rotational delay,
#: ~160 MB/s outer-track sequential bandwidth.
HDD_PROFILE = DeviceProfile(tier="hdd", seek_latency=8e-3,
                            request_latency=0.5e-3,
                            bandwidth_bytes_per_sec=160e6,
                            queue_depth=1, rank=0)

#: Datacenter NVMe: microsecond request latency, multi-queue parallelism.
NVME_PROFILE = DeviceProfile(tier="nvme", seek_latency=0.0,
                             request_latency=15e-6,
                             bandwidth_bytes_per_sec=3.2e9,
                             queue_depth=8, rank=2)

#: Built-in profiles by tier name (the ``storage=`` vocabulary).
DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    "hdd": HDD_PROFILE,
    "ssd": SSD_PROFILE,
    "nvme": NVME_PROFILE,
}

#: Anything :func:`resolve_profile` accepts.
ProfileLike = Union[str, DeviceProfile, None]


def resolve_profile(profile: ProfileLike) -> DeviceProfile:
    """Normalize a profile argument: name, profile object, or None (SSD)."""
    if profile is None:
        return SSD_PROFILE
    if isinstance(profile, DeviceProfile):
        return profile
    if isinstance(profile, str):
        try:
            return DEVICE_PROFILES[profile]
        except KeyError:
            close = difflib.get_close_matches(profile, DEVICE_PROFILES, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise KeyError(
                f"unknown storage profile {profile!r}{hint}; built-in "
                f"profiles: {', '.join(sorted(DEVICE_PROFILES))}")
    raise TypeError(
        f"storage profile must be a tier name, a DeviceProfile, or None; "
        f"got {profile!r}")


class StorageDevice:
    """A profile-driven block device with seek-aware service times.

    Requests occupy one of ``profile.queue_depth`` service slots; each
    pays ``seek (if non-sequential) + request latency + size/bandwidth``
    seconds, scaled by the injected ``latency_factor``.  The device
    tracks the head position from *positioned* requests (those passing
    ``offset=``); legacy offset-free requests are treated as sequential
    continuations and never charge seek — which is also what keeps the
    seek-free tiers bit-identical to the pre-profile ``SsdDevice``.
    """

    def __init__(self, sim: Simulator, profile: ProfileLike = None,
                 costs=None, name: Optional[str] = None):
        # Imported here to keep repro.storage importable without touching
        # repro.hostmodel's package __init__ (which imports storage back).
        from repro.hostmodel.costs import CostModel

        self.sim = sim
        self.profile = resolve_profile(profile)
        self.costs = costs or CostModel()
        self.name = name or self.profile.tier
        self._channel = Resource(sim, capacity=self.profile.queue_depth,
                                 name=f"{self.name}.channel")
        #: Head position one past the last serviced request (None until the
        #: first positioned request establishes it).
        self._head: Optional[int] = None
        #: Total bytes transferred (reads + writes), for reporting.
        self.bytes_read = 0
        self.bytes_written = 0
        self.requests = 0
        #: Non-sequential positioned requests (charged seek_latency each).
        self.seeks = 0
        #: Service-time multiplier (injected latency spike; 1.0 = healthy).
        self.latency_factor = 1.0
        #: When True every request raises :class:`DiskError`.
        self.failing = False
        self.io_errors = 0

    # ------------------------------------------------------------ fault knobs
    def set_latency_factor(self, factor: float) -> None:
        """Degrade (or restore) the device's service time."""
        if factor <= 0:
            raise ValueError(f"latency factor must be positive: {factor}")
        self.latency_factor = factor

    def set_failing(self, failing: bool) -> None:
        """Start/stop failing every request with :class:`DiskError`."""
        self.failing = failing

    def _check_health(self) -> None:
        if self.failing:
            self.io_errors += 1
            raise DiskError(f"{self.name}: injected I/O error")

    # ----------------------------------------------------------- service time
    @property
    def request_latency(self) -> float:
        """Effective fixed per-request seconds (profile or cost model)."""
        if self.profile.request_latency is not None:
            return self.profile.request_latency
        return self.costs.ssd_request_latency

    @property
    def bandwidth_bytes_per_sec(self) -> float:
        """Effective sequential bandwidth (profile or cost model)."""
        if self.profile.bandwidth_bytes_per_sec is not None:
            return self.profile.bandwidth_bytes_per_sec
        return self.costs.ssd_bandwidth_bytes_per_sec

    def _service_time(self, nbytes: int,
                      offset: Optional[int] = None) -> float:
        """Seconds for one request; updates head tracking + seek count."""
        seek = 0.0
        if offset is not None and offset != self._head:
            self.seeks += 1
            seek = self.profile.seek_latency
        if offset is not None:
            self._head = offset + nbytes
        elif self._head is not None:
            self._head += nbytes
        return self.latency_factor * (
            seek + self.request_latency
            + nbytes / self.bandwidth_bytes_per_sec)

    # ------------------------------------------------------------------- I/O
    def read(self, nbytes: int, offset: Optional[int] = None):
        """Generator: occupy a service slot for a read of ``nbytes``.

        ``offset`` positions the request for seek accounting; ``None``
        means "sequential continuation" (the legacy call shape).
        """
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes}")
        self._check_health()
        with self._channel.request() as grant:
            yield grant
            yield self.sim.timeout(self._service_time(nbytes, offset))
            self.bytes_read += nbytes
            self.requests += 1

    def write(self, nbytes: int, offset: Optional[int] = None):
        """Generator: occupy a service slot for a write of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative write size {nbytes}")
        self._check_health()
        with self._channel.request() as grant:
            yield grant
            yield self.sim.timeout(self._service_time(nbytes, offset))
            self.bytes_written += nbytes
            self.requests += 1

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a service slot (legacy name)."""
        return self._channel.queue_length

    def __repr__(self) -> str:
        return (f"<StorageDevice {self.name} tier={self.profile.tier} "
                f"read={self.bytes_read}B written={self.bytes_written}B "
                f"reqs={self.requests} seeks={self.seeks}>")


def make_device(sim: Simulator, profile: ProfileLike = None, costs=None,
                name: Optional[str] = None) -> StorageDevice:
    """The one factory for storage devices.

    ``profile`` is a tier name (``"hdd"`` / ``"ssd"`` / ``"nvme"``), a
    :class:`DeviceProfile`, or ``None`` for the default SSD.  Unknown
    names raise with a did-you-mean suggestion.
    """
    return StorageDevice(sim, profile, costs=costs, name=name)
