"""Read-only loop-device mounts of VM disk images in the hypervisor.

The paper mounts every datanode VM's virtual disk read-only into the host
(``losetup`` + ``kpartx``, ``qemu-nbd`` for qcow) so the vRead daemon can
read HDFS block files with ordinary POSIX calls.  Because the guest's
filesystem metadata is opaque to the host, **new files created by the guest
after the mount are invisible until the mount's dentry/inode cache is
refreshed** — that is exactly what ``vRead_update`` triggers via the
namenode notification path.

:class:`LoopMount` reproduces those semantics: it snapshots the guest
filesystem's namespace (paths -> inodes) at mount/refresh time; lookups are
served only from the snapshot.  File *contents* are shared structure, which
is safe because HDFS blocks are write-once (the paper's argument for why no
read/write synchronization is needed).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.storage.filesystem import FsError, Inode
from repro.storage.image import DiskImage


class LoopMount:
    """A hypervisor-side, read-only mount of a :class:`DiskImage`."""

    def __init__(self, image: DiskImage, mount_point: str):
        self.image = image
        self.mount_point = mount_point
        self._dentries: Dict[str, Inode] = {}
        self._mounted_generation = -1
        self.refresh_count = 0
        self.refresh()

    # -------------------------------------------------------------- refresh
    def refresh(self) -> int:
        """Re-scan the image's namespace (the vRead_update remount).

        Returns the number of dentries now visible.  Cheap no-op detection
        is left to the caller (the daemon) — the real system also pays the
        refresh cost whenever it is triggered.
        """
        self._dentries = {
            path: inode for path, inode in self.image.guest_fs.walk()
        }
        self._mounted_generation = self.image.guest_fs.generation
        self.refresh_count += 1
        return len(self._dentries)

    @property
    def stale(self) -> bool:
        """True if the guest changed its namespace since the last refresh."""
        return self._mounted_generation != self.image.guest_fs.generation

    # --------------------------------------------------------------- lookups
    def lookup(self, path: str) -> Inode:
        """Resolve ``path`` against the *snapshot* namespace.

        Raises :class:`FsError` for paths created after the last refresh,
        even though they exist in the live guest filesystem, and for any
        path while the underlying image is faulted.
        """
        if self.image.faulted:
            raise FsError(
                f"image {self.image.name!r} faulted; mount "
                f"{self.mount_point!r} unreadable")
        try:
            inode = self._dentries[path]
        except KeyError:
            raise FsError(
                f"{path!r} not visible through mount {self.mount_point!r} "
                f"(stale={self.stale})")
        return inode

    def exists(self, path: str) -> bool:
        return not self.image.faulted and path in self._dentries

    def read(self, path: str, offset: int, length: int) -> bytes:
        """Read file bytes through the mount (read-only)."""
        inode = self.lookup(path)
        if inode.is_dir:
            raise FsError(f"is a directory: {path!r}")
        return inode.read(offset, length)

    def size(self, path: str) -> int:
        return self.lookup(path).size

    def __repr__(self) -> str:
        return (f"<LoopMount {self.image.name} at {self.mount_point} "
                f"dentries={len(self._dentries)} stale={self.stale}>")
