"""LRU page cache model.

Both the host kernel and every guest kernel own a page cache.  The cache
tracks which (object, page) pairs are resident; it does not store bytes
(bytes live in the filesystem's content sources) — residency is what
determines whether a read pays device time.

"Read without cache" experiments call :meth:`drop` (the paper clears the
guest disk buffer and disables the hypervisor's virtual-disk cache);
"re-read" experiments leave the cache warm.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, List, Tuple

PAGE_SIZE = 4096


class PageCache:
    """LRU cache of 4 KiB pages keyed by (object key, page index)."""

    def __init__(self, capacity_bytes: float = float("inf"),
                 name: str = "pagecache"):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity_pages = (float("inf") if capacity_bytes == float("inf")
                               else max(1, int(capacity_bytes // PAGE_SIZE)))
        #: Unbounded caches never evict, so their LRU order is unobservable —
        #: the hot paths below skip recency bookkeeping entirely for them.
        self._bounded = self.capacity_pages != float("inf")
        self._pages: "OrderedDict[Tuple[Hashable, int], None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ---------------------------------------------------------------- sizing
    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    # ----------------------------------------------------------------- pages
    @staticmethod
    def page_span(offset: int, length: int) -> range:
        """Page indices covering [offset, offset+length)."""
        if length <= 0:
            return range(0)
        first = offset // PAGE_SIZE
        last = (offset + length - 1) // PAGE_SIZE
        return range(first, last + 1)

    def missing_bytes(self, key: Hashable, offset: int, length: int) -> int:
        """Bytes in the range whose pages are NOT resident (device I/O need).

        Also counts hits/misses and refreshes LRU position of resident pages.
        """
        span = self.page_span(offset, length)
        pages = self._pages
        if not pages:
            self.misses += len(span)
            return len(span) * PAGE_SIZE
        missing_pages = 0
        if self._bounded:
            move_to_end = pages.move_to_end
            for page in span:
                entry = (key, page)
                if entry in pages:
                    move_to_end(entry)
                else:
                    missing_pages += 1
        else:
            for page in span:
                if (key, page) not in pages:
                    missing_pages += 1
        self.hits += len(span) - missing_pages
        self.misses += missing_pages
        return missing_pages * PAGE_SIZE

    def contains(self, key: Hashable, offset: int, length: int) -> bool:
        """True if every page of the range is resident (no LRU side effects)."""
        return all((key, page) in self._pages
                   for page in self.page_span(offset, length))

    def insert(self, key: Hashable, offset: int, length: int) -> None:
        """Mark the pages of the range resident, evicting LRU pages if needed."""
        pages = self._pages
        if not self._bounded:
            # Never evicts: plain dict insertion is enough (an existing key
            # keeps its slot, which is unobservable without evictions).
            for page in self.page_span(offset, length):
                pages[(key, page)] = None
            return
        capacity = self.capacity_pages
        move_to_end = pages.move_to_end
        popitem = pages.popitem
        for page in self.page_span(offset, length):
            entry = (key, page)
            if entry in pages:
                move_to_end(entry)
            else:
                pages[entry] = None
                if len(pages) > capacity:
                    popitem(last=False)
                    self.evictions += 1

    def invalidate(self, key: Hashable) -> int:
        """Drop all pages of one object; returns pages dropped."""
        stale = [entry for entry in self._pages if entry[0] == key]
        for entry in stale:
            del self._pages[entry]
        return len(stale)

    def drop(self) -> None:
        """Drop everything (echo 3 > /proc/sys/vm/drop_caches)."""
        self._pages.clear()

    def __repr__(self) -> str:
        return (f"<PageCache {self.name} pages={self.resident_pages} "
                f"hits={self.hits} misses={self.misses}>")
