"""Storage substrate: devices, page caches, filesystem, images, streams.

Layers (bottom up):

* :class:`~repro.storage.device.StorageDevice` — a profile-driven device
  model (:func:`~repro.storage.device.make_device` builds HDD/SSD/NVMe
  tiers from a declarative :class:`~repro.storage.device.DeviceProfile`;
  the old ``SsdDevice`` name is a deprecated alias).
* :class:`~repro.storage.stream.StreamLayer` — an append-only replicated
  stream layer (streams as ordered extent lists, sealed extents, atomic
  appends) that HDFS blocks map onto.
* :class:`~repro.storage.pagecache.PageCache` — LRU page cache; both the
  host kernel and every guest kernel own one.  Cache hits skip device time
  but still pay copy costs, which is exactly what makes the paper's re-read
  results interesting.
* :class:`~repro.storage.content.ByteSource` — real bytes
  (:class:`~repro.storage.content.LiteralSource`) or deterministic generated
  bytes (:class:`~repro.storage.content.PatternSource`), so tests verify
  end-to-end data integrity while benchmarks use GB-scale files without
  materializing them.
* :class:`~repro.storage.filesystem.FileSystem` — an ext-like tree of
  inodes/dentries with read/write/append, used for guest filesystems and the
  host filesystem.
* :class:`~repro.storage.image.DiskImage` — a VM's virtual disk: a file in
  the host filesystem containing a guest filesystem.
* :class:`~repro.storage.loopdev.LoopMount` — the hypervisor-side read-only
  mount of a datanode VM's image (losetup/kpartx in the paper), with the
  dentry-cache staleness + refresh semantics vRead relies on.
"""

from repro.storage.content import ByteSource, LiteralSource, PatternSource, ZeroSource
from repro.storage.device import (
    DEVICE_PROFILES,
    DeviceProfile,
    DiskError,
    HDD_PROFILE,
    NVME_PROFILE,
    SSD_PROFILE,
    StorageDevice,
    make_device,
    resolve_profile,
)
from repro.storage.disk import SsdDevice
from repro.storage.filesystem import (
    FileHandle,
    FileSystem,
    FsError,
    Inode,
)
from repro.storage.image import DiskImage
from repro.storage.loopdev import LoopMount
from repro.storage.pagecache import PageCache
from repro.storage.stream import (
    Extent,
    ExtentPlacement,
    Stream,
    StreamError,
    StreamLayer,
)

__all__ = [
    "ByteSource",
    "DEVICE_PROFILES",
    "DeviceProfile",
    "DiskError",
    "DiskImage",
    "Extent",
    "ExtentPlacement",
    "FileHandle",
    "FileSystem",
    "FsError",
    "HDD_PROFILE",
    "Inode",
    "LiteralSource",
    "LoopMount",
    "NVME_PROFILE",
    "PageCache",
    "PatternSource",
    "SSD_PROFILE",
    "SsdDevice",
    "StorageDevice",
    "Stream",
    "StreamError",
    "StreamLayer",
    "ZeroSource",
    "make_device",
    "resolve_profile",
]
