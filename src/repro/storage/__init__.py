"""Storage substrate: SSD, page caches, filesystem, disk images, loop mounts.

Layers (bottom up):

* :class:`~repro.storage.disk.SsdDevice` — a bandwidth/latency device model.
* :class:`~repro.storage.pagecache.PageCache` — LRU page cache; both the
  host kernel and every guest kernel own one.  Cache hits skip device time
  but still pay copy costs, which is exactly what makes the paper's re-read
  results interesting.
* :class:`~repro.storage.content.ByteSource` — real bytes
  (:class:`~repro.storage.content.LiteralSource`) or deterministic generated
  bytes (:class:`~repro.storage.content.PatternSource`), so tests verify
  end-to-end data integrity while benchmarks use GB-scale files without
  materializing them.
* :class:`~repro.storage.filesystem.FileSystem` — an ext-like tree of
  inodes/dentries with read/write/append, used for guest filesystems and the
  host filesystem.
* :class:`~repro.storage.image.DiskImage` — a VM's virtual disk: a file in
  the host filesystem containing a guest filesystem.
* :class:`~repro.storage.loopdev.LoopMount` — the hypervisor-side read-only
  mount of a datanode VM's image (losetup/kpartx in the paper), with the
  dentry-cache staleness + refresh semantics vRead relies on.
"""

from repro.storage.content import ByteSource, LiteralSource, PatternSource, ZeroSource
from repro.storage.disk import SsdDevice
from repro.storage.filesystem import (
    FileHandle,
    FileSystem,
    FsError,
    Inode,
)
from repro.storage.image import DiskImage
from repro.storage.loopdev import LoopMount
from repro.storage.pagecache import PageCache

__all__ = [
    "ByteSource",
    "DiskImage",
    "FileHandle",
    "FileSystem",
    "FsError",
    "Inode",
    "LiteralSource",
    "LoopMount",
    "PageCache",
    "PatternSource",
    "SsdDevice",
    "ZeroSource",
]
