"""Append-only replicated stream layer (Windows-Azure-Storage style).

A *stream* is an ordered list of *extents*; only the last extent of a
stream is writable, appends are atomic (a record never spans extents and
either fully lands or leaves no trace), and a *sealed* extent is
immutable forever.  Each extent is replicated across a deterministic
round-robin window of placement nodes (datanode ids in a cluster), so a
stream's durability story matches the Azure stream layer's: seal, then
re-replicate sealed extents freely because they can never change.

HDFS blocks map onto streams: :meth:`StreamLayer.attach` subscribes to a
namenode's block-commit notifications and appends one record per
committed block to the stream named after the block's HDFS file.  The
mapping is pure bookkeeping — no simulator events, no timing impact —
so it can shadow every cluster run and still keep golden timelines
byte-identical.

Memory discipline: a stream built with ``retain=False`` keeps only a
running length, a record count, and a rolling SHA-256 per extent — no
per-record state at all, so RSS stays flat no matter how much is
appended; ``retain=True`` keeps the bytes so reads can round-trip
appends exactly (what the property tests verify).  Virtual appends
(:meth:`Stream.append_virtual`) record length + fingerprint only and are
what the HDFS block mapping uses.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

#: Default extent capacity (matches the paper's HDFS block size).
DEFAULT_EXTENT_BYTES = 64 * 1024 * 1024

#: Default replicas per extent (Azure stream layer's intra-stamp three).
DEFAULT_REPLICATION = 3


class StreamError(Exception):
    """An illegal stream-layer operation (overflow, sealed write, ...)."""


class ExtentPlacement:
    """Deterministic round-robin replica placement for extents.

    Extent ``i`` of any stream lands on the window of ``replication``
    nodes starting at position ``i`` (mod node count) of the fixed node
    list — a pure function of the index, so serial and parallel runs
    place identically.
    """

    def __init__(self, nodes: Sequence[str],
                 replication: int = DEFAULT_REPLICATION):
        if not nodes:
            raise StreamError("extent placement needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise StreamError(f"duplicate placement nodes: {list(nodes)}")
        if replication < 1:
            raise StreamError(f"replication must be >= 1: {replication}")
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self.replication = min(replication, len(self.nodes))

    def targets(self, extent_index: int) -> Tuple[str, ...]:
        """The replica nodes for extent ``extent_index``."""
        n = len(self.nodes)
        start = extent_index % n
        return tuple(self.nodes[(start + k) % n]
                     for k in range(self.replication))

    def __repr__(self) -> str:
        return (f"<ExtentPlacement nodes={len(self.nodes)} "
                f"replication={self.replication}>")


class Extent:
    """One append-only extent: records, a rolling digest, a seal bit.

    Non-retained extents keep **no per-record state** — just the running
    length, a record count, and the rolling hash — which is what makes
    ``retain=False`` streams flat-RSS under unbounded appends.  Retained
    extents additionally keep ``(offset, length)`` per record plus the
    bytes, so :meth:`read` can round-trip.
    """

    __slots__ = ("name", "index", "limit_bytes", "replicas", "sealed",
                 "length", "record_count", "_records", "_chunks", "_hash",
                 "_digest")

    def __init__(self, name: str, index: int, limit_bytes: int,
                 replicas: Tuple[str, ...], retain: bool = True):
        self.name = name
        self.index = index
        self.limit_bytes = limit_bytes
        self.replicas = replicas
        self.sealed = False
        self.length = 0
        self.record_count = 0
        #: ``(offset, length)`` per append — retained extents only.
        self._records: Optional[List[Tuple[int, int]]] = [] if retain else None
        self._chunks: Optional[List[bytes]] = [] if retain else None
        self._hash: Optional["hashlib._Hash"] = hashlib.sha256()
        self._digest: Optional[str] = None

    @property
    def retained(self) -> bool:
        return self._chunks is not None

    def fits(self, nbytes: int) -> bool:
        return not self.sealed and self.length + nbytes <= self.limit_bytes

    def _admit(self, nbytes: int) -> int:
        if self.sealed:
            raise StreamError(f"extent {self.name} is sealed")
        if nbytes < 0:
            raise StreamError(f"negative append size {nbytes}")
        if self.length + nbytes > self.limit_bytes:
            raise StreamError(
                f"append of {nbytes}B overflows extent {self.name} "
                f"({self.length}/{self.limit_bytes}B used)")
        return self.length

    def append(self, data: bytes) -> int:
        """Atomically append ``data``; returns the record's offset."""
        offset = self._admit(len(data))
        self._hash.update(len(data).to_bytes(8, "big"))
        self._hash.update(data)
        if self._chunks is not None:
            self._chunks.append(bytes(data))
            self._records.append((offset, len(data)))
        self.record_count += 1
        self.length += len(data)
        return offset

    def append_virtual(self, nbytes: int, fingerprint: bytes = b"") -> int:
        """Append a length-only record (content identified by fingerprint).

        The bytes are never materialized — this is how GB-scale HDFS
        blocks map onto extents with flat RSS — so the extent becomes
        unreadable (:meth:`read` raises) but keeps exact lengths and a
        deterministic digest.
        """
        offset = self._admit(nbytes)
        self._hash.update(nbytes.to_bytes(8, "big"))
        self._hash.update(fingerprint)
        if self._chunks is not None:
            self._chunks = None  # mixed content can't round-trip reads
            self._records = None
        self.record_count += 1
        self.length += nbytes
        return offset

    def seal(self) -> None:
        """Make the extent immutable (idempotent; sealing seals forever).

        Sealing finalizes the rolling digest and frees the hash object —
        a sealed extent can never change, so its digest is frozen.
        """
        if not self.sealed:
            self.sealed = True
            self._digest = self._hash.hexdigest()
            self._hash = None

    def read(self, offset: int, length: int) -> bytes:
        """The bytes at ``[offset, offset+length)`` (retained extents only)."""
        if not self.retained:
            raise StreamError(
                f"extent {self.name} holds no content (retain=False or "
                f"virtual appends); only lengths and digests are kept")
        if offset < 0 or length < 0 or offset + length > self.length:
            raise StreamError(
                f"read [{offset}, {offset + length}) outside extent "
                f"{self.name} of {self.length}B")
        out: List[bytes] = []
        remaining = length
        for (start, size), chunk in zip(self._records, self._chunks):
            if remaining == 0:
                break
            if start + size <= offset:
                continue
            lo = max(0, offset - start)
            take = min(size - lo, remaining)
            out.append(chunk[lo:lo + take])
            offset += take
            remaining -= take
        return b"".join(out)

    def digest(self) -> str:
        """Rolling SHA-256 over (length, content-or-fingerprint) records."""
        if self._digest is not None:
            return self._digest
        return self._hash.hexdigest()

    def __repr__(self) -> str:
        state = "sealed" if self.sealed else "open"
        return (f"<Extent {self.name} {self.length}/{self.limit_bytes}B "
                f"{self.record_count} records {state} @{self.replicas}>")


class Stream:
    """An ordered extent list; only the last extent accepts appends."""

    def __init__(self, name: str, placement: ExtentPlacement,
                 extent_bytes: int = DEFAULT_EXTENT_BYTES,
                 retain: bool = True):
        if extent_bytes < 1:
            raise StreamError(f"extent size must be >= 1: {extent_bytes}")
        self.name = name
        self.placement = placement
        self.extent_bytes = extent_bytes
        self.retain = retain
        self.extents: List[Extent] = []

    # ---------------------------------------------------------------- appends
    def _writable_extent(self, nbytes: int) -> Extent:
        if nbytes > self.extent_bytes:
            raise StreamError(
                f"append of {nbytes}B exceeds the extent size "
                f"{self.extent_bytes}B of stream {self.name!r}; appends "
                f"are atomic and never span extents")
        if not self.extents or not self.extents[-1].fits(nbytes):
            if self.extents:
                self.extents[-1].seal()
            index = len(self.extents)
            self.extents.append(Extent(
                f"{self.name}/ext{index}", index, self.extent_bytes,
                self.placement.targets(index), retain=self.retain))
        return self.extents[-1]

    def append(self, data: bytes) -> Tuple[int, int]:
        """Append ``data``; returns ``(extent_index, offset_in_extent)``."""
        extent = self._writable_extent(len(data))
        return extent.index, extent.append(data)

    def append_virtual(self, nbytes: int,
                       fingerprint: bytes = b"") -> Tuple[int, int]:
        """Append a length-only record (see :meth:`Extent.append_virtual`)."""
        extent = self._writable_extent(nbytes)
        return extent.index, extent.append_virtual(nbytes, fingerprint)

    def seal(self) -> None:
        """Seal the last extent; further appends open a fresh extent."""
        if self.extents:
            self.extents[-1].seal()

    # ------------------------------------------------------------------ reads
    @property
    def length(self) -> int:
        return sum(extent.length for extent in self.extents)

    def read(self, position: int, length: int) -> bytes:
        """Bytes at stream position ``[position, position+length)``."""
        if position < 0 or length < 0 or position + length > self.length:
            raise StreamError(
                f"read [{position}, {position + length}) outside stream "
                f"{self.name!r} of {self.length}B")
        out: List[bytes] = []
        remaining = length
        for extent in self.extents:
            if remaining == 0:
                break
            if extent.length <= position:
                position -= extent.length
                continue
            take = min(extent.length - position, remaining)
            out.append(extent.read(position, take))
            position = 0
            remaining -= take
        return b"".join(out)

    def digest(self) -> str:
        """SHA-256 over the extent chain (replicas, seal bits, contents)."""
        acc = hashlib.sha256()
        for extent in self.extents:
            acc.update(extent.name.encode())
            acc.update(b"|".join(node.encode() for node in extent.replicas))
            acc.update(b"sealed" if extent.sealed else b"open")
            acc.update(extent.digest().encode())
        return acc.hexdigest()

    def __repr__(self) -> str:
        return (f"<Stream {self.name!r} extents={len(self.extents)} "
                f"length={self.length}B>")


class StreamLayer:
    """The stream namespace + the HDFS block mapping.

    ``nodes`` are the placement targets (datanode ids);
    ``extent_bytes``/``replication``/``retain`` set the defaults every
    stream inherits.  :meth:`attach` wires the layer under a namenode so
    committed HDFS blocks land in per-file streams automatically.
    """

    def __init__(self, nodes: Sequence[str],
                 replication: int = DEFAULT_REPLICATION,
                 extent_bytes: int = DEFAULT_EXTENT_BYTES,
                 retain: bool = False):
        self.placement = ExtentPlacement(nodes, replication)
        self.extent_bytes = extent_bytes
        self.retain = retain
        self._streams: Dict[str, Stream] = {}
        #: block name -> (stream name, extent index, offset, length).
        self._block_map: Dict[str, Tuple[str, int, int, int]] = {}

    def set_nodes(self, nodes: Sequence[str]) -> None:
        """Re-point placement at a new node list (membership changed).

        Only streams created *after* the call place extents on the new
        window; existing streams keep the placement they were born with,
        so recorded extent locations never shift under churn.
        """
        self.placement = ExtentPlacement(nodes, self.placement.replication)

    # -------------------------------------------------------------- namespace
    def create(self, name: str, retain: Optional[bool] = None) -> Stream:
        if name in self._streams:
            raise StreamError(f"stream exists: {name!r}")
        stream = Stream(name, self.placement, self.extent_bytes,
                        self.retain if retain is None else retain)
        self._streams[name] = stream
        return stream

    def get_or_create(self, name: str) -> Stream:
        stream = self._streams.get(name)
        return stream if stream is not None else self.create(name)

    def stream(self, name: str) -> Stream:
        try:
            return self._streams[name]
        except KeyError:
            raise StreamError(
                f"no stream {name!r}; layer has {sorted(self._streams)}")

    def streams(self) -> List[str]:
        return sorted(self._streams)

    # ----------------------------------------------------------- HDFS mapping
    def attach(self, namenode) -> "StreamLayer":
        """Shadow ``namenode``: map every committed block onto a stream.

        Commit notifications fire once per replica; the map dedupes on
        block name so each block appends exactly one record.  Returns
        ``self`` for chaining.
        """
        namenode.add_observer(self._on_block_event)
        return self

    def _on_block_event(self, event: str, block, datanode_id: str) -> None:
        if event == "commit" and block.name not in self._block_map:
            self.record_block(block)
        elif event == "delete":
            self._block_map.pop(block.name, None)

    def record_block(self, block) -> Tuple[str, int, int, int]:
        """Append ``block`` to its file's stream; returns the location."""
        if block.name in self._block_map:
            raise StreamError(f"block {block.name} already mapped")
        stream = self.get_or_create(block.file_path)
        extent_index, offset = stream.append_virtual(
            block.size, fingerprint=block.name.encode())
        location = (stream.name, extent_index, offset, block.size)
        self._block_map[block.name] = location
        return location

    def locate_block(self, block_name: str) -> Tuple[str, int, int, int]:
        """Where a block lives: (stream, extent index, offset, length)."""
        try:
            return self._block_map[block_name]
        except KeyError:
            raise StreamError(
                f"block {block_name!r} is not mapped; layer has "
                f"{len(self._block_map)} blocks")

    @property
    def mapped_blocks(self) -> int:
        return len(self._block_map)

    # ------------------------------------------------------------ determinism
    def digest(self) -> str:
        """SHA-256 over every stream (sorted), for determinism gates."""
        acc = hashlib.sha256()
        for name in self.streams():
            acc.update(name.encode())
            acc.update(self._streams[name].digest().encode())
        for block_name in sorted(self._block_map):
            stream_name, extent, offset, length = self._block_map[block_name]
            acc.update(f"{block_name}@{stream_name}/{extent}"
                       f"+{offset}:{length}".encode())
        return acc.hexdigest()

    def describe(self) -> str:
        """Human-readable layout, one line per stream."""
        lines = []
        for name in self.streams():
            stream = self._streams[name]
            sealed = sum(1 for extent in stream.extents if extent.sealed)
            lines.append(
                f"{name}: {len(stream.extents)} extents ({sealed} sealed), "
                f"{stream.length}B")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<StreamLayer streams={len(self._streams)} "
                f"blocks={len(self._block_map)} "
                f"replication={self.placement.replication}>")
