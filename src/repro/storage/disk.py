"""SSD device model: a FIFO-served device with per-request latency and
bandwidth-limited transfer time.

The device itself burns no CPU — DMA moves the data; CPU costs of the
layers above (virtio, page cache copies) are charged by those layers.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import Resource, Simulator


class DiskError(Exception):
    """An injected (or modelled) device-level I/O error."""


class SsdDevice:
    """A single SSD with sequential bandwidth and fixed per-request latency.

    Fault-injection knobs (driven by :mod:`repro.faults`): a *latency
    factor* scales service time (noisy-neighbour / flaky-virtual-disk
    spikes) and a *failing* device raises :class:`DiskError` on every
    request, which the layers above translate into replica failover or a
    vRead fallback.
    """

    def __init__(self, sim: Simulator, costs=None, name: str = "ssd"):
        # Imported here to keep repro.storage importable without touching
        # repro.hostmodel's package __init__ (which imports storage back).
        from repro.hostmodel.costs import CostModel

        self.sim = sim
        self.costs = costs or CostModel()
        self.name = name
        self._channel = Resource(sim, capacity=1)
        #: Total bytes transferred (reads + writes), for reporting.
        self.bytes_read = 0
        self.bytes_written = 0
        self.requests = 0
        #: Service-time multiplier (injected latency spike; 1.0 = healthy).
        self.latency_factor = 1.0
        #: When True every request raises :class:`DiskError`.
        self.failing = False
        self.io_errors = 0

    def set_latency_factor(self, factor: float) -> None:
        """Degrade (or restore) the device's service time."""
        if factor <= 0:
            raise ValueError(f"latency factor must be positive: {factor}")
        self.latency_factor = factor

    def set_failing(self, failing: bool) -> None:
        """Start/stop failing every request with :class:`DiskError`."""
        self.failing = failing

    def _service_time(self, nbytes: int) -> float:
        return self.latency_factor * (
            self.costs.ssd_request_latency
            + nbytes / self.costs.ssd_bandwidth_bytes_per_sec)

    def _check_health(self) -> None:
        if self.failing:
            self.io_errors += 1
            raise DiskError(f"{self.name}: injected I/O error")

    def read(self, nbytes: int):
        """Generator: occupy the device for a read of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes}")
        self._check_health()
        with self._channel.request() as grant:
            yield grant
            yield self.sim.timeout(self._service_time(nbytes))
            self.bytes_read += nbytes
            self.requests += 1

    def write(self, nbytes: int):
        """Generator: occupy the device for a write of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative write size {nbytes}")
        self._check_health()
        with self._channel.request() as grant:
            yield grant
            yield self.sim.timeout(self._service_time(nbytes))
            self.bytes_written += nbytes
            self.requests += 1

    @property
    def queue_depth(self) -> int:
        return self._channel.queue_length

    def __repr__(self) -> str:
        return (f"<SsdDevice {self.name} read={self.bytes_read}B "
                f"written={self.bytes_written}B reqs={self.requests}>")
