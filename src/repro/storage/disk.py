"""SSD device model: a FIFO-served device with per-request latency and
bandwidth-limited transfer time.

The device itself burns no CPU — DMA moves the data; CPU costs of the
layers above (virtio, page cache copies) are charged by those layers.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import Resource, Simulator


class SsdDevice:
    """A single SSD with sequential bandwidth and fixed per-request latency."""

    def __init__(self, sim: Simulator, costs=None, name: str = "ssd"):
        # Imported here to keep repro.storage importable without touching
        # repro.hostmodel's package __init__ (which imports storage back).
        from repro.hostmodel.costs import CostModel

        self.sim = sim
        self.costs = costs or CostModel()
        self.name = name
        self._channel = Resource(sim, capacity=1)
        #: Total bytes transferred (reads + writes), for reporting.
        self.bytes_read = 0
        self.bytes_written = 0
        self.requests = 0

    def _service_time(self, nbytes: int) -> float:
        return (self.costs.ssd_request_latency
                + nbytes / self.costs.ssd_bandwidth_bytes_per_sec)

    def read(self, nbytes: int):
        """Generator: occupy the device for a read of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes}")
        with self._channel.request() as grant:
            yield grant
            yield self.sim.timeout(self._service_time(nbytes))
            self.bytes_read += nbytes
            self.requests += 1

    def write(self, nbytes: int):
        """Generator: occupy the device for a write of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative write size {nbytes}")
        with self._channel.request() as grant:
            yield grant
            yield self.sim.timeout(self._service_time(nbytes))
            self.bytes_written += nbytes
            self.requests += 1

    @property
    def queue_depth(self) -> int:
        return self._channel.queue_length

    def __repr__(self) -> str:
        return (f"<SsdDevice {self.name} read={self.bytes_read}B "
                f"written={self.bytes_written}B reqs={self.requests}>")
