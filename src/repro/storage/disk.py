"""Deprecated home of the SSD device model.

The storage stack is profile-driven now (:mod:`repro.storage.device`):
:func:`~repro.storage.device.make_device` builds HDD/SSD/NVMe devices
from a declarative :class:`~repro.storage.device.DeviceProfile`.
:class:`SsdDevice` remains as a thin alias for the default SSD tier so
old construction sites keep working, at the price of a
``DeprecationWarning``.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.sim import Simulator
from repro.storage.device import DiskError, SSD_PROFILE, StorageDevice

__all__ = ["DiskError", "SsdDevice"]


class SsdDevice(StorageDevice):
    """Deprecated alias: an SSD-profile :class:`StorageDevice`.

    Use ``make_device(sim, "ssd", costs, name)`` instead; this shim keeps
    the pre-profile constructor signature and timing byte-identical.
    """

    def __init__(self, sim: Simulator, costs=None, name: str = "ssd"):
        warnings.warn(
            "SsdDevice is deprecated; use "
            "repro.storage.device.make_device(sim, 'ssd', ...) instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(sim, SSD_PROFILE, costs=costs, name=name)
