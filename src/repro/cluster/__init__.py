"""Cluster construction: declarative testbeds matching the paper's setups.

:class:`~repro.cluster.builder.VirtualHadoopCluster` builds the paper's
Figure 10 topology (and variants): physical hosts on a 10 GbE/RoCE LAN,
a client+namenode VM and a co-located datanode VM on host 1, a second
datanode VM on host 2, optional lookbusy background VMs, and — when
enabled — vRead installed across the cluster.
"""

from repro.cluster.builder import ClusterConfig, VirtualHadoopCluster

__all__ = ["ClusterConfig", "VirtualHadoopCluster"]
