"""Cluster construction: declarative testbeds matching the paper's setups.

:class:`~repro.cluster.topology.TopologySpec` describes a layout (racks
of hosts, VMs with roles) and
:class:`~repro.cluster.builder.VirtualHadoopCluster` interprets it into a
live simulated deployment: physical hosts on a 10 GbE/RoCE fabric with
rack-aware switching, a client+namenode VM and a co-located datanode VM
on host 1, further datanode VMs elsewhere, optional lookbusy background
VMs, and — when enabled — vRead installed across the cluster.  The
default spec is the paper's Figure 10 testbed
(:func:`~repro.cluster.topology.paper_fig10`); multi-rack layouts come
from :func:`~repro.cluster.topology.rack_cluster`.
"""

from repro.cluster.builder import ClusterConfig, VirtualHadoopCluster
from repro.cluster.membership import ClusterController, MembershipError
from repro.cluster.topology import (
    HostSpec,
    RackSpec,
    TopologyError,
    TopologySpec,
    VmSpec,
    paper_fig10,
    rack_cluster,
    runtime_topology,
)

__all__ = [
    "ClusterConfig",
    "ClusterController",
    "HostSpec",
    "MembershipError",
    "RackSpec",
    "TopologyError",
    "TopologySpec",
    "VirtualHadoopCluster",
    "VmSpec",
    "paper_fig10",
    "rack_cluster",
    "runtime_topology",
]
