"""Declarative cluster topology: racks, hosts, VMs, and factory presets.

A :class:`TopologySpec` describes *where everything runs* — racks of
physical hosts, and the VMs placed on each host with a role:

* ``client`` — runs an HDFS client (the first client VM also hosts the
  namenode, as in the paper's testbed);
* ``datanode`` — runs a datanode process (``datanode_id`` defaults to
  ``dn1``, ``dn2``, ... in declaration order);
* ``background`` — a lookbusy CPU hog (the paper's "4vms" contention);
* ``aux`` — a plain VM for auxiliary services (e.g. the MySQL box in the
  Sqoop experiment).

The spec is pure data: building it touches no simulator state, so it can
be constructed, validated, pickled to worker processes, and diffed in
tests.  :class:`~repro.cluster.builder.VirtualHadoopCluster` interprets a
spec into live hosts/VMs/services; the network layer uses the rack
boundaries to model the fabric (per-host NIC -> top-of-rack switch ->
oversubscribed aggregation uplink) and the HDFS placement policy uses
them for rack-aware replica placement.

Two factory presets cover the common cases:

* :func:`paper_fig10` — the paper's Figure 10 testbed (the default a bare
  ``VirtualHadoopCluster()`` builds): one rack, client + datanode1 on
  host1, datanode2.. on the other hosts, optional lookbusy fill.
* :func:`rack_cluster` — a scale-out layout: ``n_racks`` racks of
  ``hosts_per_rack`` hosts, ``datanodes_per_host`` datanode VMs each, and
  ``clients`` client VMs placed round-robin across hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.storage.device import DeviceProfile, resolve_profile

#: Valid :attr:`VmSpec.role` values.
ROLES = ("client", "datanode", "background", "aux")

#: Default ToR->aggregation oversubscription ratio (a 4:1 leaf-spine
#: fabric, the classic datacenter design point).
DEFAULT_OVERSUBSCRIPTION = 4.0


class TopologyError(ValueError):
    """An inconsistent or unbuildable topology description."""


@dataclass
class VmSpec:
    """One VM placement: a name, a role, and (for datanodes) an id."""

    name: str
    role: str = "aux"
    #: Datanode id (``dn1``, ``dn2``, ...); auto-assigned in declaration
    #: order by :meth:`TopologySpec.validate` when left ``None``.
    datanode_id: Optional[str] = None

    def __post_init__(self):
        if self.role not in ROLES:
            raise TopologyError(
                f"unknown VM role {self.role!r} for {self.name!r}; "
                f"expected one of {ROLES}")
        if self.datanode_id is not None and self.role != "datanode":
            raise TopologyError(
                f"VM {self.name!r} has datanode_id={self.datanode_id!r} "
                f"but role {self.role!r}; only datanode VMs carry ids")


@dataclass
class HostSpec:
    """One physical host and the VMs placed on it.

    ``storage`` declares the host's device tier — a profile name
    (``"hdd"`` / ``"ssd"`` / ``"nvme"``), a
    :class:`~repro.storage.device.DeviceProfile`, or ``None`` to inherit
    the cluster default (the paper's SSD).  Mixing tiers across hosts is
    how heterogeneous layouts are declared; the HDFS placement policy
    can then steer hot blocks onto the fast media.
    """

    name: str
    vms: List[VmSpec] = field(default_factory=list)
    storage: Optional[Union[str, DeviceProfile]] = None

    def add(self, vm: VmSpec) -> "HostSpec":
        self.vms.append(vm)
        return self


@dataclass
class RackSpec:
    """One rack: a named top-of-rack switch and its hosts."""

    name: str
    hosts: List[HostSpec] = field(default_factory=list)


@dataclass
class TopologySpec:
    """The whole cluster layout, validated and queryable.

    ``oversubscription`` is the ToR->aggregation bandwidth ratio the
    network fabric models for cross-rack traffic (irrelevant for
    single-rack specs, where no traffic crosses the aggregation layer).
    """

    racks: List[RackSpec] = field(default_factory=list)
    oversubscription: float = DEFAULT_OVERSUBSCRIPTION

    def __post_init__(self):
        self.validate()

    # ------------------------------------------------------------- validation
    def validate(self) -> "TopologySpec":
        """Check structural invariants; assign default datanode ids.

        Raises :class:`TopologyError` with a description of the first
        inconsistency found.  Returns ``self`` for chaining.
        """
        if not self.racks:
            raise TopologyError("topology has no racks")
        if self.oversubscription < 1.0:
            raise TopologyError(
                f"oversubscription must be >= 1.0 (1.0 = non-blocking "
                f"fabric): {self.oversubscription}")
        rack_names, host_names, vm_names, dn_ids = set(), set(), set(), set()
        n_clients = n_datanodes = 0
        next_dn = 1
        for rack in self.racks:
            if rack.name in rack_names:
                raise TopologyError(f"duplicate rack name {rack.name!r}")
            rack_names.add(rack.name)
            if not rack.hosts:
                raise TopologyError(f"rack {rack.name!r} has no hosts")
            for host in rack.hosts:
                if host.name in host_names:
                    raise TopologyError(
                        f"duplicate host name {host.name!r}")
                host_names.add(host.name)
                if host.storage is not None:
                    try:
                        resolve_profile(host.storage)
                    except (KeyError, TypeError) as exc:
                        raise TopologyError(
                            f"host {host.name!r}: {exc}")
                for vm in host.vms:
                    if vm.name in vm_names:
                        raise TopologyError(
                            f"duplicate VM name {vm.name!r}")
                    vm_names.add(vm.name)
                    if vm.role == "client":
                        n_clients += 1
                    elif vm.role == "datanode":
                        n_datanodes += 1
                        if vm.datanode_id is None:
                            vm.datanode_id = f"dn{next_dn}"
                        if vm.datanode_id in dn_ids:
                            raise TopologyError(
                                f"duplicate datanode id "
                                f"{vm.datanode_id!r} ({vm.name!r})")
                        dn_ids.add(vm.datanode_id)
                        next_dn += 1
        if n_clients == 0:
            raise TopologyError(
                "topology has no client VM; add a VmSpec(role='client')")
        if n_datanodes == 0:
            raise TopologyError(
                "topology has no datanode VM; add a VmSpec(role='datanode')")
        return self

    # --------------------------------------------------------------- queries
    def hosts(self) -> List[HostSpec]:
        """All hosts in rack order."""
        return [host for rack in self.racks for host in rack.hosts]

    def placements(self, role: Optional[str] = None
                   ) -> List[Tuple[RackSpec, HostSpec, VmSpec]]:
        """``(rack, host, vm)`` triples in declaration order, by role."""
        return [(rack, host, vm)
                for rack in self.racks
                for host in rack.hosts
                for vm in host.vms
                if role is None or vm.role == role]

    def tiers(self) -> List[str]:
        """The explicitly declared storage tiers, sorted (may be empty).

        Hosts with ``storage=None`` inherit the cluster default and are
        not listed; a non-empty result on some-but-not-all hosts means a
        heterogeneous layout.
        """
        return sorted({resolve_profile(host.storage).tier
                       for host in self.hosts()
                       if host.storage is not None})

    def rack_of(self, host_name: str) -> str:
        for rack in self.racks:
            for host in rack.hosts:
                if host.name == host_name:
                    return rack.name
        raise TopologyError(
            f"no host named {host_name!r}; topology has "
            f"{[h.name for h in self.hosts()]}")

    def host_of_datanode(self, datanode_id: str) -> str:
        for _, host, vm in self.placements("datanode"):
            if vm.datanode_id == datanode_id:
                return host.name
        raise TopologyError(
            f"no datanode {datanode_id!r}; topology has "
            f"{[vm.datanode_id for _, _, vm in self.placements('datanode')]}")

    def counts(self) -> Dict[str, int]:
        """Summary counts: racks, hosts, and VMs per role."""
        out = {"racks": len(self.racks), "hosts": len(self.hosts())}
        for role in ROLES:
            out[role] = len(self.placements(role))
        return out

    def describe(self) -> str:
        """Human-readable layout, one line per host."""
        lines = []
        for rack in self.racks:
            lines.append(f"{rack.name}:")
            for host in rack.hosts:
                vms = ", ".join(
                    f"{vm.name}[{vm.datanode_id}]" if vm.datanode_id
                    else f"{vm.name}({vm.role})" for vm in host.vms)
                tier = ("" if host.storage is None
                        else f" <{resolve_profile(host.storage).tier}>")
                lines.append(f"  {host.name}{tier}: {vms or '(empty)'}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        c = self.counts()
        return (f"<TopologySpec racks={c['racks']} hosts={c['hosts']} "
                f"clients={c['client']} datanodes={c['datanode']}>")


# --------------------------------------------------------------- runtime view
def runtime_topology(cluster) -> TopologySpec:
    """Rebuild a :class:`TopologySpec` from a cluster's *current* state.

    The spec a cluster was built from is frozen at construction time; after
    membership churn (migrations, decommissions, added VMs) its queries go
    stale.  This reconstructs a fresh spec from the live objects — racks
    from the fabric, VM placements and datanode ids from the cluster's
    runtime lists — so ``rack_of`` / ``host_of_datanode`` / ``counts`` /
    ``describe`` answer for the cluster as it is *now*.  Pure data, like
    any spec: building it touches no simulator state.
    """
    roles: Dict[str, str] = {}
    dn_ids: Dict[str, str] = {}
    for vm in cluster.client_vms:
        roles[vm.name] = "client"
    for datanode in cluster.datanodes:
        roles[datanode.vm.name] = "datanode"
        dn_ids[datanode.vm.name] = datanode.datanode_id
    for vm in cluster.background_vms:
        roles[vm.name] = "background"

    racks: Dict[str, RackSpec] = {}
    for host in cluster.hosts:
        rack_name = host.rack or "rack1"
        rack = racks.get(rack_name)
        if rack is None:
            rack = racks[rack_name] = RackSpec(rack_name)
        spec = HostSpec(host.name)
        for vm in host.vms:
            spec.add(VmSpec(vm.name, roles.get(vm.name, "aux"),
                            datanode_id=dn_ids.get(vm.name)))
        rack.hosts.append(spec)
    return TopologySpec(racks=list(racks.values()),
                        oversubscription=cluster.topology.oversubscription)


# ------------------------------------------------------------------- presets
def paper_fig10(n_hosts: int = 2, n_datanodes: Optional[int] = None,
                total_vms_per_host: int = 2,
                clients: int = 1) -> TopologySpec:
    """The paper's Figure 10 testbed as a declarative spec (the default).

    One rack (a flat single-switch LAN).  Host 1 carries the client VM(s)
    and ``datanode1``; hosts 2..``n_datanodes`` carry ``datanode2``.. and
    any remaining hosts stay empty for auxiliary services.  With
    ``total_vms_per_host > 2``, every host running cluster VMs is filled
    to the total with lookbusy background VMs — exactly the "4vms"
    contention scenario.

    ``clients > 1`` adds ``client2``.. on host 1 (same-host scale-out, the
    multi-client extension experiment).
    """
    if n_hosts < 2:
        raise TopologyError(
            f"need at least 2 hosts (client + remote datanode): {n_hosts}")
    if total_vms_per_host < 2:
        raise TopologyError(
            f"need at least 2 VMs on host 1 (client + datanode): "
            f"{total_vms_per_host}")
    if clients < 1:
        raise TopologyError(f"need at least 1 client VM: {clients}")
    if n_datanodes is not None:
        if n_datanodes < 2:
            raise TopologyError(
                f"n_datanodes must be >= 2 (a lone datanode cannot "
                f"exercise the remote path): {n_datanodes}")
        if n_datanodes > n_hosts:
            raise TopologyError(
                f"n_datanodes={n_datanodes} exceeds n_hosts={n_hosts}: "
                f"each datanode after the first needs its own host")
    n_datanodes = n_datanodes or n_hosts

    hosts = [HostSpec(f"host{i + 1}") for i in range(n_hosts)]
    hosts[0].add(VmSpec("client", "client"))
    for i in range(1, clients):
        hosts[0].add(VmSpec(f"client{i + 1}", "client"))
    hosts[0].add(VmSpec("datanode1", "datanode"))
    for i in range(2, n_datanodes + 1):
        hosts[i - 1].add(VmSpec(f"datanode{i}", "datanode"))
    # Background fill: only hosts already running cluster VMs get hogs.
    if total_vms_per_host > 2:
        for host in hosts:
            occupied = len(host.vms)
            if occupied == 0:
                continue
            for j in range(total_vms_per_host - occupied):
                host.add(VmSpec(f"{host.name}-bg{j + 1}", "background"))
    return TopologySpec(racks=[RackSpec("rack1", hosts)])


def rack_cluster(n_racks: int, hosts_per_rack: int,
                 datanodes_per_host: int = 1, clients: int = 1,
                 oversubscription: float = DEFAULT_OVERSUBSCRIPTION,
                 storage: Optional[Union[str, DeviceProfile,
                                         Sequence[Union[str, DeviceProfile]]]]
                 = None) -> TopologySpec:
    """A multi-rack scale-out layout.

    Racks ``rack1``..``rackN`` each hold ``hosts_per_rack`` hosts (named
    ``host1``.. sequentially across racks), every host runs
    ``datanodes_per_host`` datanode VMs, and ``clients`` client VMs are
    placed round-robin across all hosts starting at host 1 — so the first
    client is co-located with ``datanode1``, matching the paper's layout
    in the degenerate ``n_racks=1, hosts_per_rack=2`` case.

    ``storage`` declares device tiers: one profile (name or
    :class:`~repro.storage.device.DeviceProfile`) applies to every host,
    a sequence gives one profile *per rack* — ``storage=("nvme", "hdd")``
    is a mixed fast/slow two-rack layout.  ``None`` keeps the cluster
    default (SSD).
    """
    if n_racks < 1:
        raise TopologyError(f"need at least 1 rack: {n_racks}")
    if hosts_per_rack < 1:
        raise TopologyError(f"need at least 1 host per rack: {hosts_per_rack}")
    if n_racks * hosts_per_rack < 2:
        raise TopologyError(
            "need at least 2 hosts in total (client + remote datanode): "
            f"{n_racks} rack(s) x {hosts_per_rack} host(s)")
    if datanodes_per_host < 1:
        raise TopologyError(
            f"need at least 1 datanode per host: {datanodes_per_host}")
    if clients < 1:
        raise TopologyError(f"need at least 1 client VM: {clients}")
    if storage is None or isinstance(storage, (str, DeviceProfile)):
        rack_storage: List = [storage] * n_racks
    else:
        rack_storage = list(storage)
        if len(rack_storage) != n_racks:
            raise TopologyError(
                f"storage declares {len(rack_storage)} rack tier(s) for "
                f"{n_racks} rack(s); pass one profile per rack (or a "
                f"single profile for all)")

    racks: List[RackSpec] = []
    host_specs: List[HostSpec] = []
    host_no = 1
    for r in range(n_racks):
        rack = RackSpec(f"rack{r + 1}")
        for _ in range(hosts_per_rack):
            host = HostSpec(f"host{host_no}", storage=rack_storage[r])
            host_no += 1
            rack.hosts.append(host)
            host_specs.append(host)
        racks.append(rack)
    for i in range(clients):
        name = "client" if i == 0 else f"client{i + 1}"
        host_specs[i % len(host_specs)].add(VmSpec(name, "client"))
    dn_no = 1
    for host in host_specs:
        for _ in range(datanodes_per_host):
            host.add(VmSpec(f"datanode{dn_no}", "datanode"))
            dn_no += 1
    return TopologySpec(racks=racks, oversubscription=oversubscription)
