"""The cluster membership control plane: churn as a first-class operation.

A :class:`VirtualHadoopCluster` is *built* from a declarative
:class:`~repro.cluster.topology.TopologySpec`, but after construction the
spec is frozen — this controller owns the cluster's **runtime** view and
the operations that change it:

* :meth:`ClusterController.add_datanode` — a new datanode VM joins an
  existing host and registers with the namenode, the stream layer, the
  replication monitor, and (when deployed) every vRead host service;
* :meth:`ClusterController.decommission_datanode` — graceful drain
  through the :class:`~repro.hdfs.replication.ReplicationMonitor`
  (``decommission`` -> wait drained -> ``finalize_decommission``), then a
  full detach: the datanode shuts down, the namenode forgets it, vRead
  hash tables drop its entries, and the VM's threads are retired;
* :meth:`ClusterController.add_client_vm` /
  :meth:`ClusterController.remove_client_vm` — elastic client pool (what
  the load layer's autoscaler drives);
* :meth:`ClusterController.migrate` — live migration wrapping
  :func:`~repro.virt.migration.migrate_vm` with the bookkeeping the paper
  prescribes in Section 6: vRead tables rebound on every host, hash-table
  coverage extended to hosts that just gained their first datanode, and
  the rack-local RDMA domain recomputed implicitly (transport decisions
  read live host positions).

Every operation bumps :attr:`ClusterController.version` and notifies
registered observers, so layers above (replication, experiments, the
autoscaler) can react to membership events without polling.

Determinism contract: **constructing** the controller creates no
simulator events and draws no randomness — a cluster that never churns
takes exactly the pre-controller code path, byte for byte.  Operations
themselves are deterministic functions of the call sequence and the
simulation clock.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, List, Optional, Union

from repro.hdfs.datanode import Datanode
from repro.hdfs.replication import ReplicationMonitor
from repro.virt.migration import migrate_vm
from repro.virt.vm import VirtualMachine


class MembershipError(ValueError):
    """An illegal membership operation (unknown or conflicting target)."""


def _suggest(name: str, valid) -> str:
    close = difflib.get_close_matches(name, list(valid), n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


class ClusterController:
    """The live membership model of one cluster (``cluster.membership``)."""

    def __init__(self, cluster):
        self._cluster = cluster
        #: Monotonic membership version; 0 means "as built, never churned".
        self.version = 0
        #: Datanode ids retired by decommission (for target-resolution
        #: error messages: "dn3 was decommissioned").
        self.decommissioned: List[str] = []
        #: Client VM names removed from the pool.
        self.removed_clients: List[str] = []
        #: ``(version, event, detail)`` log of every membership change.
        self.log: List[tuple] = []
        self._observers: List[Callable[[str, Dict], None]] = []
        #: The controller-owned replication monitor, created (and started)
        #: lazily by the first decommission — or explicitly via
        #: :meth:`ensure_monitor`.
        self.monitor: Optional[ReplicationMonitor] = None
        self._next_datanode = len(cluster.datanodes) + 1
        self._next_client = len(cluster.client_vms) + 1

    # -------------------------------------------------------------- observers
    def add_observer(self, callback: Callable[[str, Dict], None]) -> None:
        """Register ``callback(event, detail)`` for membership changes.

        Events: ``datanode-added``, ``datanode-decommissioned``,
        ``client-added``, ``client-removed``, ``vm-migrated``.
        """
        self._observers.append(callback)

    def _bump(self, event: str, **detail) -> None:
        self.version += 1
        self.log.append((self.version, event, detail))
        self._cluster.fault_counters.count(f"membership.{event}", **detail)
        for callback in self._observers:
            callback(event, detail)

    # ------------------------------------------------------------ runtime view
    def live_datanode_ids(self) -> List[str]:
        """Datanode ids currently serving, in registration order."""
        return [d.datanode_id for d in self._cluster.datanodes]

    def client_vm_names(self) -> List[str]:
        return [vm.name for vm in self._cluster.client_vms]

    def describe(self) -> str:
        """The *current* layout (rack by rack), not the build-time spec."""
        from repro.cluster.topology import runtime_topology
        return runtime_topology(self._cluster).describe()

    def runtime_spec(self):
        """A fresh :class:`TopologySpec` of the cluster as it is now."""
        from repro.cluster.topology import runtime_topology
        return runtime_topology(self._cluster)

    # -------------------------------------------------------------- resolvers
    def _resolve_host(self, host):
        cluster = self._cluster
        if not isinstance(host, str):
            if host in cluster.hosts:
                return host
            raise MembershipError(
                f"host {host!r} does not belong to this cluster")
        for candidate in cluster.hosts:
            if candidate.name == host:
                return candidate
        names = [h.name for h in cluster.hosts]
        raise MembershipError(
            f"no host named {host!r}{_suggest(host, names)}; "
            f"cluster has {names}")

    def _resolve_vm(self, vm) -> VirtualMachine:
        cluster = self._cluster
        if isinstance(vm, VirtualMachine):
            if any(vm in host.vms for host in cluster.hosts):
                return vm
            raise MembershipError(
                f"VM {vm.name!r} does not belong to this cluster")
        for host in cluster.hosts:
            for candidate in host.vms:
                if candidate.name == vm:
                    return candidate
        for datanode in cluster.datanodes:
            if datanode.datanode_id == vm:
                return datanode.vm
        names = [v.name for host in cluster.hosts for v in host.vms]
        raise MembershipError(
            f"no VM named {vm!r}{_suggest(vm, names)}; cluster has {names} "
            f"(datanode ids also resolve: {self.live_datanode_ids()})")

    def _all_vm_names(self) -> List[str]:
        return [vm.name for host in self._cluster.hosts for vm in host.vms]

    # ---------------------------------------------------------------- monitor
    def ensure_monitor(self, heartbeat_interval: float = 3.0
                       ) -> ReplicationMonitor:
        """The controller's replication monitor, started on first use."""
        if self.monitor is None:
            self.monitor = ReplicationMonitor(
                self._cluster.namenode, self._cluster.network,
                heartbeat_interval=heartbeat_interval)
        if not self.monitor._running:
            self.monitor.start(self._cluster.sim)
        return self.monitor

    def stop_monitor(self) -> None:
        """Stop the controller's monitor loops so the sim can drain."""
        if self.monitor is not None:
            self.monitor.stop()

    # -------------------------------------------------------------- datanodes
    def add_datanode(self, host, name: Optional[str] = None,
                     datanode_id: Optional[str] = None) -> Datanode:
        """Bring a new datanode VM up on ``host`` (name or object).

        Defaults continue the topology's numbering (``datanodeN`` /
        ``dnN``).  The datanode registers with the namenode immediately,
        joins the stream layer's placement window and the controller's
        replication monitor (if running), and every vRead host service
        learns its location.
        """
        cluster = self._cluster
        host = self._resolve_host(host)
        if datanode_id is None:
            existing = set(self.live_datanode_ids()) | set(self.decommissioned)
            while f"dn{self._next_datanode}" in existing:
                self._next_datanode += 1
            datanode_id = f"dn{self._next_datanode}"
        elif datanode_id in self.live_datanode_ids():
            raise MembershipError(
                f"datanode id {datanode_id!r} is already in use; live ids: "
                f"{self.live_datanode_ids()}")
        if name is None:
            taken = set(self._all_vm_names())
            while f"datanode{self._next_datanode}" in taken:
                self._next_datanode += 1
            name = f"datanode{self._next_datanode}"
            self._next_datanode += 1
        elif name in self._all_vm_names():
            raise MembershipError(
                f"VM name {name!r} is already in use; cluster has "
                f"{self._all_vm_names()}")

        vm = VirtualMachine(host, name)
        datanode = Datanode(datanode_id, vm, cluster.namenode,
                            cluster.network)
        cluster.datanode_vms.append(vm)
        cluster.datanodes.append(datanode)
        cluster.stream_layer.set_nodes(self.live_datanode_ids())
        if cluster.vread_manager is not None:
            cluster.vread_manager.rebind_datanode(datanode)
            cluster.vread_manager.ensure_coverage()
        if self.monitor is not None and self.monitor._running:
            self.monitor.note_datanode_added(datanode_id)
        self._bump("datanode-added", datanode=datanode_id, host=host.name)
        return datanode

    def decommission_datanode(self, datanode_id: str,
                              poll_interval: Optional[float] = None):
        """Generator: drain ``datanode_id`` gracefully, then detach it.

        Drain goes through the controller's replication monitor: the node
        stops receiving placements, every block whose *only* replica it
        holds is copied elsewhere, and once
        :meth:`~repro.hdfs.replication.ReplicationMonitor.is_drained`
        turns true the replicas are dropped via
        ``finalize_decommission``.  Blocks left under-replicated (the
        ``replication >= 2`` case) are repaired by the monitor's sweep in
        the background.  Detach then removes the datanode everywhere: it
        stops serving, the namenode and vRead tables forget it, and the
        VM's threads are retired from its host's scheduler.
        """
        cluster = self._cluster
        datanode = None
        for candidate in cluster.datanodes:
            if candidate.datanode_id == datanode_id:
                datanode = candidate
                break
        if datanode is None:
            gone = (f" ({datanode_id!r} was already decommissioned)"
                    if datanode_id in self.decommissioned else "")
            raise MembershipError(
                f"no live datanode {datanode_id!r}{gone}"
                f"{_suggest(datanode_id, self.live_datanode_ids())}; "
                f"live datanodes: {self.live_datanode_ids()}")
        if len(cluster.datanodes) == 1:
            raise MembershipError(
                f"cannot decommission {datanode_id!r}: it is the last "
                f"datanode in the cluster")

        monitor = self.ensure_monitor()
        monitor.decommission(datanode_id)
        interval = (poll_interval if poll_interval is not None
                    else monitor.heartbeat_interval)
        while not monitor.is_drained(datanode_id):
            yield cluster.sim.timeout(interval)
        monitor.finalize_decommission(datanode_id)

        # Detach: the node leaves every layer it was wired into.
        vm = datanode.vm
        datanode.shutdown()
        monitor.forget_datanode(datanode_id)
        cluster.namenode.unregister_datanode(datanode_id)
        if cluster.vread_manager is not None:
            cluster.vread_manager.detach_datanode(datanode_id)
        cluster.datanodes.remove(datanode)
        cluster.datanode_vms.remove(vm)
        cluster.stream_layer.set_nodes(self.live_datanode_ids())
        vm.host.vms.remove(vm)
        for thread in (vm.vcpu, vm.vhost, vm.qemu_io):
            vm.host.scheduler.retire_thread(thread)
        self.decommissioned.append(datanode_id)
        self._bump("datanode-decommissioned", datanode=datanode_id)
        return datanode_id

    # ---------------------------------------------------------------- clients
    def add_client_vm(self, name: Optional[str] = None,
                      host=None) -> VirtualMachine:
        """Add a client VM to the pool (autoscaler scale-up)."""
        cluster = self._cluster
        host = (self._resolve_host(host) if host is not None
                else cluster.hosts[0])
        if name is None:
            taken = set(self._all_vm_names())
            while f"client{self._next_client}" in taken:
                self._next_client += 1
            name = f"client{self._next_client}"
            self._next_client += 1
        elif name in self._all_vm_names():
            raise MembershipError(
                f"VM name {name!r} is already in use; cluster has "
                f"{self._all_vm_names()}")
        vm = VirtualMachine(host, name)
        cluster.client_vms.append(vm)
        self._bump("client-added", vm=name, host=host.name)
        return vm

    def remove_client_vm(self, name: Union[str, VirtualMachine]) -> None:
        """Remove a client VM (name or object) from the pool.

        The primary client VM cannot be removed — it hosts the namenode.
        Tears down the VM's vRead attachment (channel/daemon/library) and
        cached vanilla client, retires its threads, and drops it from the
        host.
        """
        cluster = self._cluster
        if isinstance(name, VirtualMachine):
            name = name.name
        vm = None
        for candidate in cluster.client_vms:
            if candidate.name == name:
                vm = candidate
                break
        if vm is None:
            names = self.client_vm_names()
            gone = (f" ({name!r} was already removed)"
                    if name in self.removed_clients else "")
            raise MembershipError(
                f"no client VM named {name!r}{gone}{_suggest(name, names)}; "
                f"client VMs: {names}")
        if vm is cluster.client_vm:
            raise MembershipError(
                f"cannot remove {name!r}: the primary client VM hosts the "
                f"namenode")
        if cluster.vread_manager is not None:
            cluster.vread_manager.detach_client(vm)
        cluster.clients._vanilla.pop(vm.name, None)
        cluster.client_vms.remove(vm)
        vm.host.vms.remove(vm)
        for thread in (vm.vcpu, vm.vhost, vm.qemu_io):
            vm.host.scheduler.retire_thread(thread)
        self.removed_clients.append(name)
        self._bump("client-removed", vm=name)

    # -------------------------------------------------------------- migration
    def migrate(self, vm: Union[str, VirtualMachine], host,
                ram_bytes: Optional[int] = None,
                downtime_seconds: Optional[float] = None):
        """Generator: live-migrate ``vm`` (name, datanode id, or object).

        Wraps :func:`~repro.virt.migration.migrate_vm` with the full
        bookkeeping the ``MigrateVm`` fault used to do by hand: source
        threads retired, vRead hash tables rebound on every host (paper
        Section 6), coverage extended to a freshly-created service on the
        destination, and the RDMA rack domain recomputed implicitly (the
        transports read live host positions per request).
        """
        cluster = self._cluster
        vm = self._resolve_vm(vm)
        target = self._resolve_host(host)
        if target is vm.host:
            raise MembershipError(
                f"cannot migrate {vm.name!r}: target host {target.name!r} "
                f"is the VM's current host")
        manager = cluster.vread_manager
        if (manager is not None and vm.name in manager._libraries):
            raise MembershipError(
                f"cannot migrate {vm.name!r}: it has a vRead client "
                f"attachment (channel + daemon pinned to "
                f"{vm.host.name!r}); detach it first")
        kwargs = {}
        if ram_bytes is not None:
            kwargs["ram_bytes"] = ram_bytes
        if downtime_seconds is not None:
            kwargs["downtime_seconds"] = downtime_seconds
        yield from migrate_vm(vm, target, cluster.lan, **kwargs)
        if manager is not None:
            for datanode in cluster.datanodes:
                if datanode.vm is vm:
                    manager.rebind_datanode(datanode)
                    manager.ensure_coverage()
        self._bump("vm-migrated", vm=vm.name, host=target.name)
        return vm

    def __repr__(self) -> str:
        return (f"<ClusterController v{self.version} "
                f"datanodes={self.live_datanode_ids()} "
                f"clients={self.client_vm_names()}>")
