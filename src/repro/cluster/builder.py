"""Build simulated virtual Hadoop clusters (the paper's Figure 10).

Default topology::

    Host1: VM1 client+namenode | VM2 datanode1 | [VM3, VM4: lookbusy 85%]
    Host2: VM1 datanode2       | [VM2..VM4: lookbusy 85%]

``total_vms_per_host=2`` gives the paper's "2vms" scenarios (no background
load); ``total_vms_per_host=4`` gives the "4vms" scenarios where vCPU and
I/O threads contend for the quad-core hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core import VReadManager
from repro.core.integration import VReadDfsClient
from repro.hdfs import Datanode, DfsClient, HdfsConfig, Namenode
from repro.hostmodel import PhysicalHost
from repro.hostmodel.costs import CostModel
from repro.hostmodel.frequency import GHZ_2_0
from repro.net.lan import Lan
from repro.net.rdma import RdmaLink
from repro.net.tcp import VmNetwork
from repro.sim import Simulator
from repro.virt.vm import VirtualMachine
from repro.workloads.lookbusy import Lookbusy


@dataclass
class ClusterConfig:
    """Knobs for a :class:`VirtualHadoopCluster`."""

    #: Physical hosts (>=2 for the remote/hybrid scenarios).
    n_hosts: int = 2
    #: Hosts carrying a datanode VM (host1..hostN); None = every host.
    #: Extra hosts stay empty for auxiliary services (e.g. the MySQL box in
    #: the Sqoop experiment).
    n_datanodes: Optional[int] = None
    cores_per_host: int = 4
    frequency_hz: float = GHZ_2_0
    #: Total VMs per host including client/datanodes ("2vms" vs "4vms").
    total_vms_per_host: int = 2
    lookbusy_utilization: float = 0.85
    #: HDFS block size (paper default 64 MB; shrink for quick runs).
    block_size: int = 64 * 1024 * 1024
    replication: int = 1
    #: Install vRead and expose a vRead-enabled client.
    vread: bool = False
    #: Remote daemon transport: 'rdma' (RoCE) or 'tcp'.
    vread_transport: str = "rdma"
    #: Section 6 ablation: daemons bypass the host filesystem.
    vread_bypass_host_fs: bool = False
    #: ivshmem ring geometry + response chunking (ablation knobs).
    vread_ring_slots: int = 1024
    vread_ring_slot_bytes: int = 4096
    vread_chunk_bytes: int = 1 << 20
    #: HDFS data-transfer packet size (None = HdfsConfig default).
    packet_bytes: Optional[int] = None
    costs: Optional[CostModel] = None

    def __post_init__(self):
        if self.n_hosts < 2:
            raise ValueError("need at least 2 hosts (client + remote datanode)")
        if self.total_vms_per_host < 2:
            raise ValueError("need at least 2 VMs on host1 (client + datanode)")
        if self.n_datanodes is not None and not (
                2 <= self.n_datanodes <= self.n_hosts):
            raise ValueError(
                f"n_datanodes must be in [2, n_hosts]: {self.n_datanodes}")


class VirtualHadoopCluster:
    """A ready-to-use simulated deployment."""

    def __init__(self, config: Optional[ClusterConfig] = None, **overrides):
        if config is None:
            config = ClusterConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides")
        self.config = config
        self.costs = config.costs or CostModel()
        self.sim = Simulator()
        self.lan = Lan(self.sim, self.costs)
        self.network = VmNetwork(self.sim, self.lan, self.costs)
        self.rdma = RdmaLink(self.sim, self.lan, self.costs)

        self.hosts: List[PhysicalHost] = []
        for i in range(config.n_hosts):
            host = PhysicalHost(self.sim, f"host{i + 1}",
                                cores=config.cores_per_host,
                                frequency_hz=config.frequency_hz,
                                costs=self.costs)
            self.lan.attach(host)
            self.hosts.append(host)

        # --- paper topology: client+NN and dn1 on host1, dn2.. elsewhere.
        self.client_vm = VirtualMachine(self.hosts[0], "client")
        n_datanodes = config.n_datanodes or config.n_hosts
        self.datanode_vms: List[VirtualMachine] = [
            VirtualMachine(self.hosts[0], "datanode1")]
        for i, host in enumerate(self.hosts[1:n_datanodes], start=2):
            self.datanode_vms.append(VirtualMachine(host, f"datanode{i}"))

        hdfs_kwargs = {"block_size": config.block_size,
                       "replication": config.replication}
        if config.packet_bytes is not None:
            hdfs_kwargs["packet_bytes"] = config.packet_bytes
        self.hdfs_config = HdfsConfig(**hdfs_kwargs)
        self.namenode = Namenode(self.hdfs_config, vm=self.client_vm)
        self.datanodes: List[Datanode] = [
            Datanode(f"dn{i + 1}", vm, self.namenode, self.network)
            for i, vm in enumerate(self.datanode_vms)]

        # --- background lookbusy VMs.  The paper's "2vms" scenario has no
        # background load at all; with more VMs per host, every host is
        # filled to the total with 85% lookbusy hogs (host2 gets 3 in the
        # "4vms" case, exactly as Figure 10 shows).
        self.lookbusy: List[Lookbusy] = []
        self.background_vms: List[VirtualMachine] = []
        for host in self.hosts:
            occupied = len(host.vms)
            # Only hosts running cluster VMs receive background load;
            # auxiliary hosts (e.g. a MySQL box) are left alone.
            fill_to = (config.total_vms_per_host
                       if config.total_vms_per_host > 2 and occupied > 0
                       else occupied)
            for j in range(fill_to - occupied):
                vm = VirtualMachine(host, f"{host.name}-bg{j + 1}")
                self.background_vms.append(vm)
                self.lookbusy.append(
                    Lookbusy(vm, config.lookbusy_utilization))

        # --- vRead deployment.
        self.vread_manager: Optional[VReadManager] = None
        if config.vread:
            self.vread_manager = VReadManager(
                self.namenode, self.network, self.lan,
                rdma_link=self.rdma, transport=config.vread_transport,
                bypass_host_fs=config.vread_bypass_host_fs,
                ring_slots=config.vread_ring_slots,
                ring_slot_bytes=config.vread_ring_slot_bytes,
                channel_chunk_bytes=config.vread_chunk_bytes)

        self._vanilla_client = DfsClient(self.client_vm, self.namenode,
                                         self.network)

    # ------------------------------------------------------------------ client
    def client(self) -> Union[DfsClient, VReadDfsClient]:
        """The HDFS client under test: vRead-enabled if configured."""
        if self.vread_manager is not None:
            return self.vread_manager.attach_client(self.client_vm)
        return self._vanilla_client

    def vanilla_client(self) -> DfsClient:
        """A plain client (e.g. to load datasets identically in both modes)."""
        return self._vanilla_client

    def add_client_vm(self, name: str,
                      host_index: int = 0) -> VirtualMachine:
        """Add another client VM (scale-out experiments)."""
        return VirtualMachine(self.hosts[host_index], name)

    def client_for(self, vm: VirtualMachine):
        """An HDFS client for any VM, honouring the cluster's vRead mode."""
        if self.vread_manager is not None:
            return self.vread_manager.attach_client(vm)
        return DfsClient(vm, self.namenode, self.network)

    # ------------------------------------------------------------------- runs
    def run(self, process):
        """Run the simulation until ``process`` completes; return its value."""
        return self.sim.run_until_complete(process)

    def run_all(self, processes):
        """Run until every process in ``processes`` completes."""
        results = []
        for process in processes:
            results.append(self.sim.run_until_complete(process))
        return results

    def settle(self) -> None:
        """Drain pending events (only safe with background load stopped)."""
        self.sim.run()

    def stop_background(self) -> None:
        for hog in self.lookbusy:
            hog.stop()

    # ------------------------------------------------------------------ caches
    def drop_all_caches(self) -> None:
        """Cold-read preparation: drop every guest and host cache."""
        for host in self.hosts:
            host.drop_caches()
            for vm in host.vms:
                vm.drop_guest_cache()

    def set_frequency(self, frequency_hz: float) -> None:
        """cpufreq-set on every host."""
        for host in self.hosts:
            host.set_frequency(frequency_hz)

    # ------------------------------------------------------------------- data
    def write_dataset(self, path: str, source, favored=None,
                      spread: bool = False, replication: Optional[int] = None):
        """Generator: load a dataset through the vanilla write path."""
        yield from self._vanilla_client.write_file(
            path, source, replication=replication, favored=favored,
            spread=spread)

    def __repr__(self) -> str:
        mode = "vRead" if self.config.vread else "vanilla"
        return (f"<VirtualHadoopCluster {mode} hosts={len(self.hosts)} "
                f"vms/host={self.config.total_vms_per_host} "
                f"freq={self.config.frequency_hz / 1e9:.1f}GHz>")
