"""Build simulated virtual Hadoop clusters from declarative topologies.

The builder is a thin interpreter over a
:class:`~repro.cluster.topology.TopologySpec`: racks become switch
domains on the LAN fabric, hosts become :class:`PhysicalHost` instances,
and VM specs become client / datanode / lookbusy / auxiliary VMs wired
to the HDFS services.  The default spec is the paper's Figure 10
testbed (:func:`~repro.cluster.topology.paper_fig10`)::

    Host1: VM1 client+namenode | VM2 datanode1 | [VM3, VM4: lookbusy 85%]
    Host2: VM1 datanode2       | [VM2..VM4: lookbusy 85%]

``total_vms_per_host=2`` gives the paper's "2vms" scenarios (no background
load); ``total_vms_per_host=4`` gives the "4vms" scenarios where vCPU and
I/O threads contend for the quad-core hosts.  Multi-rack layouts come
from :func:`~repro.cluster.topology.rack_cluster` or a hand-built spec
passed as ``ClusterConfig(topology=...)``.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, List, Optional, Union

from repro.cluster.membership import ClusterController
from repro.cluster.topology import TopologySpec, paper_fig10
from repro.storage.device import DeviceProfile, resolve_profile
from repro.storage.stream import StreamLayer
from repro.core import VReadManager
from repro.core.integration import VReadDfsClient
from repro.faults import FaultInjector, FaultPlan
from repro.hdfs import Datanode, DfsClient, HdfsConfig, Namenode
from repro.hostmodel import PhysicalHost
from repro.hostmodel.costs import CostModel
from repro.hostmodel.frequency import GHZ_2_0
from repro.metrics.accounting import FaultCounters
from repro.metrics.tracing import Tracer
from repro.net.lan import Lan
from repro.net.rdma import RdmaLink
from repro.net.tcp import VmNetwork
from repro.sim import Simulator
from repro.sim.rng import RandomStreams
from repro.virt.vm import VirtualMachine
from repro.workloads.lookbusy import Lookbusy


@dataclass
class ClusterConfig:
    """Knobs for a :class:`VirtualHadoopCluster`."""

    #: Physical hosts (>=2 for the remote/hybrid scenarios).  Layout knob:
    #: only consulted when ``topology`` is left None.
    n_hosts: int = 2
    #: Hosts carrying a datanode VM (host 1..N); None = every host.
    #: Extra hosts stay empty for auxiliary services (e.g. the MySQL box in
    #: the Sqoop experiment).  Layout knob (see ``n_hosts``).
    n_datanodes: Optional[int] = None
    cores_per_host: int = 4
    frequency_hz: float = GHZ_2_0
    #: Total VMs per host including client/datanodes ("2vms" vs "4vms").
    #: Layout knob (see ``n_hosts``).
    total_vms_per_host: int = 2
    lookbusy_utilization: float = 0.85
    #: HDFS block size (paper default 64 MB; shrink for quick runs).
    block_size: int = 64 * 1024 * 1024
    replication: int = 1
    #: Install vRead and expose a vRead-enabled client.
    vread: bool = False
    #: Remote daemon transport: 'rdma' (RoCE) or 'tcp'.
    vread_transport: str = "rdma"
    #: Section 6 ablation: daemons bypass the host filesystem.
    vread_bypass_host_fs: bool = False
    #: ivshmem ring geometry + response chunking (ablation knobs).
    vread_ring_slots: int = 1024
    vread_ring_slot_bytes: int = 4096
    vread_chunk_bytes: int = 1 << 20
    #: HDFS data-transfer packet size (None = HdfsConfig default).
    packet_bytes: Optional[int] = None
    costs: Optional[CostModel] = None
    #: Seed for every named random stream the cluster hands out (retry
    #: jitter, chaos plans, workload randomness).  Same seed, same run.
    seed: int = 0
    #: Fault schedule, executed once ``cluster.faults.arm()`` is called.
    faults: Optional[FaultPlan] = None
    #: Declarative cluster layout.  None (the default) builds the paper's
    #: Figure 10 testbed from the legacy layout knobs above; pass a
    #: :func:`~repro.cluster.topology.rack_cluster` or hand-built spec for
    #: anything else.  Mutually exclusive with the layout knobs.
    topology: Optional[TopologySpec] = None
    #: Default storage tier for every host: a profile name ("hdd" / "ssd"
    #: / "nvme"), a :class:`~repro.storage.device.DeviceProfile`, or None
    #: for the paper's SSD.  Per-host ``HostSpec(storage=...)``
    #: declarations in the topology override this default.
    storage: Optional[Union[str, DeviceProfile]] = None

    @classmethod
    def from_kwargs(cls, **kwargs) -> "ClusterConfig":
        """Build a config, rejecting unknown keys with a helpful error.

        Unlike the bare dataclass constructor (whose ``TypeError`` names
        nothing useful), this lists the valid keys and suggests the closest
        match for a typo.
        """
        valid = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            parts = []
            for key in unknown:
                close = difflib.get_close_matches(key, valid, n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                parts.append(f"{key!r}{hint}")
            raise TypeError(
                f"unknown ClusterConfig option(s): {', '.join(parts)}; "
                f"valid options are: {', '.join(sorted(valid))}")
        return cls(**kwargs)

    def __post_init__(self):
        # All layout validation lives in the topology presets: the legacy
        # knobs are just shorthand for the paper_fig10 spec, so mixing them
        # with an explicit spec would be ambiguous.
        if self.topology is not None:
            if (self.n_hosts != 2 or self.n_datanodes is not None
                    or self.total_vms_per_host != 2):
                raise ValueError(
                    "pass either topology=... or the legacy layout knobs "
                    "(n_hosts / n_datanodes / total_vms_per_host), not both")
            self.topology.validate()
        else:
            self.topology = paper_fig10(
                n_hosts=self.n_hosts, n_datanodes=self.n_datanodes,
                total_vms_per_host=self.total_vms_per_host)
        # Fail fast on storage typos (did-you-mean, like from_kwargs).
        resolve_profile(self.storage)


class ClusterClients:
    """The one façade for obtaining HDFS clients from a cluster.

    Replaces the old trio ``cluster.client()`` / ``cluster.client_for(vm)``
    / ``cluster.vanilla_client()`` with a single explicit call::

        cluster.clients.get()                        # auto, primary VM
        cluster.clients.get(mode="vanilla")          # plain TCP path
        cluster.clients.get(mode="vread", vm=vm2)    # vRead, specific VM

    Modes:

    * ``"auto"`` — vRead-enabled client when the cluster was built with
      ``vread=True``, the vanilla client otherwise (what experiments want).
    * ``"vread"`` — require the vRead path; error if not deployed.
    * ``"vanilla"`` — the plain datanode-TCP path, even on a vRead cluster
      (e.g. to load datasets identically in both modes).
    """

    MODES = ("auto", "vread", "vanilla")

    def __init__(self, cluster: "VirtualHadoopCluster"):
        self._cluster = cluster
        self._vanilla: dict = {}

    def get(self, mode: str = "auto",
            vm: Optional[VirtualMachine] = None):
        """An HDFS client for ``vm`` (default: the primary client VM)."""
        if mode not in self.MODES:
            raise ValueError(
                f"unknown client mode {mode!r}; expected one of {self.MODES}")
        cluster = self._cluster
        if vm is None:
            vm = cluster.client_vm
        if mode == "auto":
            mode = "vread" if cluster.vread_manager is not None else "vanilla"
        if mode == "vread":
            if cluster.vread_manager is None:
                raise ValueError(
                    "mode='vread' on a cluster built without vread=True; "
                    "pass vread=True to ClusterConfig or use mode='vanilla'")
            return cluster.vread_manager.attach_client(vm)
        if vm is cluster.client_vm:
            return cluster._vanilla_client
        client = self._vanilla.get(vm.name)
        if client is None:
            client = DfsClient(vm, cluster.namenode, cluster.network,
                               counters=cluster.fault_counters,
                               retry_rng=cluster.rng.stream("dfs-retry"))
            self._vanilla[vm.name] = client
        return client

    def __repr__(self) -> str:
        mode = "vread" if self._cluster.vread_manager is not None else "vanilla"
        return f"<ClusterClients auto->{mode}>"


class VirtualHadoopCluster:
    """A ready-to-use simulated deployment, interpreted from a spec."""

    def __init__(self, config: Optional[ClusterConfig] = None, **overrides):
        if config is None:
            config = ClusterConfig.from_kwargs(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides")
        self.config = config
        #: The declarative layout this cluster was interpreted from.
        self.topology: TopologySpec = config.topology
        self.costs = config.costs or CostModel()
        self.sim = Simulator()
        #: Named deterministic random streams, all derived from config.seed.
        self.rng = RandomStreams(config.seed)
        self.tracer = Tracer()
        self.fault_counters = FaultCounters(
            self.tracer, clock=lambda: self.sim.now)
        self.lan = Lan(self.sim, self.costs,
                       oversubscription=self.topology.oversubscription)
        self.network = VmNetwork(self.sim, self.lan, self.costs)
        self.rdma = RdmaLink(self.sim, self.lan, self.costs)

        # --- physical layer: hosts attach to the fabric rack by rack.
        self.hosts: List[PhysicalHost] = []
        self._hosts_by_name: Dict[str, PhysicalHost] = {}
        for rack in self.topology.racks:
            for host_spec in rack.hosts:
                host = PhysicalHost(self.sim, host_spec.name,
                                    cores=config.cores_per_host,
                                    frequency_hz=config.frequency_hz,
                                    costs=self.costs,
                                    storage=(host_spec.storage
                                             if host_spec.storage is not None
                                             else config.storage))
                self.lan.attach(host, rack=rack.name)
                self.hosts.append(host)
                self._hosts_by_name[host_spec.name] = host

        # --- VM layer, role by role.  The phase order (clients, datanodes,
        # HDFS services, aux, background) fixes the event-creation order and
        # therefore byte-identical timelines for the default spec.
        self.client_vms: List[VirtualMachine] = [
            self._place(host_spec, vm_spec)
            for _, host_spec, vm_spec in self.topology.placements("client")]
        #: The primary client VM; also hosts the namenode (paper layout).
        self.client_vm = self.client_vms[0]

        datanode_placements = self.topology.placements("datanode")
        self.datanode_vms: List[VirtualMachine] = [
            self._place(host_spec, vm_spec)
            for _, host_spec, vm_spec in datanode_placements]

        hdfs_kwargs = {"block_size": config.block_size,
                       "replication": config.replication}
        if config.packet_bytes is not None:
            hdfs_kwargs["packet_bytes"] = config.packet_bytes
        self.hdfs_config = HdfsConfig(**hdfs_kwargs)
        self.namenode = Namenode(self.hdfs_config, vm=self.client_vm)
        # Placement decisions show up in the trace as placement.* events.
        self.namenode.policy.counters = self.fault_counters
        self.datanodes: List[Datanode] = [
            Datanode(vm_spec.datanode_id, vm, self.namenode, self.network)
            for (_, _, vm_spec), vm in zip(datanode_placements,
                                           self.datanode_vms)]

        #: The append-only stream layer shadowing HDFS: every committed
        #: block maps onto an extent of its file's stream.  Bookkeeping
        #: only — it creates no simulator events, so golden timelines are
        #: unaffected.
        self.stream_layer = StreamLayer(
            [datanode.datanode_id for datanode in self.datanodes],
            replication=config.replication,
            extent_bytes=config.block_size).attach(self.namenode)

        self.aux_vms: List[VirtualMachine] = [
            self._place(host_spec, vm_spec)
            for _, host_spec, vm_spec in self.topology.placements("aux")]

        # --- background lookbusy VMs (the paper's "4vms" contention).
        self.lookbusy: List[Lookbusy] = []
        self.background_vms: List[VirtualMachine] = []
        for _, host_spec, vm_spec in self.topology.placements("background"):
            vm = self._place(host_spec, vm_spec)
            self.background_vms.append(vm)
            self.lookbusy.append(Lookbusy(vm, config.lookbusy_utilization))

        # --- vRead deployment.
        self.vread_manager: Optional[VReadManager] = None
        if config.vread:
            self.vread_manager = VReadManager(
                self.namenode, self.network, self.lan,
                rdma_link=self.rdma, transport=config.vread_transport,
                bypass_host_fs=config.vread_bypass_host_fs,
                ring_slots=config.vread_ring_slots,
                ring_slot_bytes=config.vread_ring_slot_bytes,
                channel_chunk_bytes=config.vread_chunk_bytes,
                counters=self.fault_counters,
                retry_rng=self.rng.stream("dfs-retry"))

        self._vanilla_client = DfsClient(
            self.client_vm, self.namenode, self.network,
            counters=self.fault_counters,
            retry_rng=self.rng.stream("dfs-retry"))

        #: The one way to get HDFS clients (vread/vanilla/auto).
        self.clients = ClusterClients(self)
        #: The live membership control plane: add/decommission datanodes,
        #: elastic client pool, live migration with full bookkeeping.
        #: Construction is pure bookkeeping (no events, no RNG), so
        #: churn-free clusters behave byte-identically to the static path.
        self.membership = ClusterController(self)
        #: Fault-injection handle for ``config.faults``; call
        #: ``cluster.faults.arm()`` once the workload is about to start.
        self.faults = FaultInjector(self, config.faults, self.fault_counters)

    def _place(self, host_spec, vm_spec) -> VirtualMachine:
        return VirtualMachine(self._hosts_by_name[host_spec.name],
                              vm_spec.name)

    # --------------------------------------------------------------- topology
    def host_named(self, name: str) -> PhysicalHost:
        """The host called ``name`` (clear error listing valid names)."""
        try:
            return self._hosts_by_name[name]
        except KeyError:
            raise ValueError(f"no host named {name!r}; cluster has "
                             f"{[h.name for h in self.hosts]}")

    def host_of_datanode(self, datanode_id: str) -> PhysicalHost:
        """The physical host carrying datanode ``datanode_id``."""
        for datanode in self.datanodes:
            if datanode.datanode_id == datanode_id:
                return datanode.vm.host
        raise ValueError(
            f"no datanode {datanode_id!r}; cluster has "
            f"{[d.datanode_id for d in self.datanodes]}")

    # ------------------------------------------------------------------ client
    def add_client_vm(self, name: str,
                      host_index: int = 0) -> VirtualMachine:
        """Deprecated: use ``cluster.membership.add_client_vm`` instead.

        Kept as a shim so old call sites keep working; routes through the
        membership controller (which versions the change and notifies
        observers).  Prefer declaring clients in the topology
        (``paper_fig10(clients=N)`` / ``rack_cluster(..., clients=N)``) or
        calling the controller directly.
        """
        import warnings
        warnings.warn(
            "VirtualHadoopCluster.add_client_vm is deprecated; use "
            "cluster.membership.add_client_vm(name, host=...)",
            DeprecationWarning, stacklevel=2)
        return self.membership.add_client_vm(
            name, host=self.hosts[host_index])

    def remove_client_vm(self, name: str) -> None:
        """Remove a client VM from the pool (see the membership controller)."""
        self.membership.remove_client_vm(name)

    # ------------------------------------------------------------------- runs
    def run(self, process):
        """Run the simulation until ``process`` completes; return its value."""
        return self.sim.run_until_complete(process)

    def run_all(self, processes):
        """Run until every process in ``processes`` completes."""
        results = []
        for process in processes:
            results.append(self.sim.run_until_complete(process))
        return results

    def settle(self) -> None:
        """Drain pending events (only safe with background load stopped)."""
        self.sim.run()

    def stop_background(self) -> None:
        for hog in self.lookbusy:
            hog.stop()

    # ------------------------------------------------------------------ caches
    def drop_all_caches(self) -> None:
        """Cold-read preparation: drop every guest and host cache."""
        for host in self.hosts:
            host.drop_caches()
            for vm in host.vms:
                vm.drop_guest_cache()

    def set_frequency(self, frequency_hz: float) -> None:
        """cpufreq-set on every host."""
        for host in self.hosts:
            host.set_frequency(frequency_hz)

    # ------------------------------------------------------------------- data
    def write_dataset(self, path: str, source, favored=None,
                      spread: bool = False, replication: Optional[int] = None,
                      hot: bool = False):
        """Generator: load a dataset through the vanilla write path."""
        yield from self._vanilla_client.write_file(
            path, source, replication=replication, favored=favored,
            spread=spread, hot=hot)

    def __repr__(self) -> str:
        mode = "vRead" if self.config.vread else "vanilla"
        counts = self.topology.counts()
        return (f"<VirtualHadoopCluster {mode} racks={counts['racks']} "
                f"hosts={counts['hosts']} "
                f"freq={self.config.frequency_hz / 1e9:.1f}GHz>")
