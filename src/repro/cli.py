"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — enumerate the registered experiments.
* ``run <name> [--quick|--paper] [--jobs N] [--seed S] [--json OUT]`` — run
  one experiment (or ``all``) and print its paper-style table(s).
  ``--jobs`` fans sweep-shaped experiments out over worker processes;
  parallel and serial runs produce byte-identical results.
* ``profile <name> [--quick|--paper] [--memory] [--kernel] [--json OUT]``
  — run one experiment under the profiling harness (cProfile + kernel
  counters; see :mod:`repro.perf`) and print the hot functions and
  events/sec summary.  ``--kernel`` adds the fast-path breakdown (wheel
  cascades/overflow promotions, epoch commits vs demotions).
* ``demo`` — the quickstart: vanilla vs vRead on one file, verified.

The experiment table itself lives in :mod:`repro.experiments.registry`;
this module is a thin client of it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro.experiments import registry

#: name -> one-line description, in report order (mirrors the registry).
EXPERIMENTS: Dict[str, str] = {
    spec.name: spec.title for spec in registry.specs()
}


def _profile(args) -> str:
    if getattr(args, "paper", False):
        return "paper"
    return "quick" if args.quick else "default"


def _runner_for(name: str, quick: bool) -> Callable[[], object]:
    """Compat shim for the pre-registry CLI: a zero-arg runner for ``name``.

    New code should call :func:`repro.experiments.runner.run_experiment`
    directly (which also accepts ``jobs`` and ``seed``).
    """
    from repro.experiments import runner

    registry.get(name)  # raise KeyError early for unknown names
    profile = "quick" if quick else "default"
    return lambda: runner.run_experiment(name, profile=profile)


def cmd_list(_args) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, description in EXPERIMENTS.items():
        print(f"  {name.ljust(width)}  {description}")
    print("\nrun one with: python -m repro run <name>   (or 'all'; "
          "--jobs N parallelizes sweeps)")
    return 0


def cmd_run(args) -> int:
    if args.experiment == "all":
        from repro.experiments import run_all
        argv = []
        if args.quick:
            argv.append("--quick")
        if args.paper:
            argv.append("--paper")
        if args.jobs != 1:
            argv += ["--jobs", str(args.jobs)]
        return run_all.main(argv)
    from repro.experiments import runner
    try:
        registry.get(args.experiment)
    except KeyError:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: python -m repro list", file=sys.stderr)
        return 2
    result = runner.run_experiment(args.experiment, profile=_profile(args),
                                   jobs=args.jobs, seed=args.seed)
    print(result.render())
    if args.json:
        runner.write_json(result, args.json)
        print(f"\nwrote {args.json}")
    return 0


def cmd_profile(args) -> int:
    from repro.perf import profiler

    try:
        registry.get(args.experiment)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    report = profiler.profile_experiment(
        args.experiment, profile=_profile(args), seed=args.seed,
        top=args.top, memory=args.memory, kernel_breakdown=args.kernel)
    print(report.render())
    if args.json:
        profiler.write_json(report, args.json)
        print(f"\nwrote {args.json}")
    return 0


def _demo(_args) -> int:
    from repro.cluster import VirtualHadoopCluster
    from repro.storage.content import PatternSource

    payload = PatternSource(32 << 20, seed=42)
    for mode in ("vanilla", "vRead"):
        cluster = VirtualHadoopCluster(vread=(mode == "vRead"))

        def load():
            yield from cluster.write_dataset("/demo", payload,
                                             favored=["dn1"])

        cluster.run(cluster.sim.process(load()))
        cluster.settle()
        cluster.drop_all_caches()
        start = cluster.sim.now

        def read():
            source = yield from cluster.clients.get().read_file("/demo")
            return source

        source = cluster.run(cluster.sim.process(read()))
        elapsed = cluster.sim.now - start
        assert source.checksum() == payload.checksum()
        print(f"{mode:8s} 32MB cold read: {elapsed * 1e3:7.1f} ms "
              f"({32 / elapsed:5.0f} MB/s) — data verified")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vRead (Middleware '15) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    parser_list = sub.add_parser("list", help="list experiments")
    parser_list.set_defaults(func=cmd_list)

    parser_run = sub.add_parser("run", help="run an experiment (or 'all')")
    parser_run.add_argument("experiment")
    parser_run.add_argument("--quick", action="store_true",
                            help="smaller datasets")
    parser_run.add_argument("--paper", action="store_true",
                            help="paper-sized datasets")
    parser_run.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="worker processes for sweep fan-out "
                                 "(default: 1 = serial)")
    parser_run.add_argument("--seed", type=int, default=0, metavar="S",
                            help="root seed for seeded sweeps (default: 0)")
    parser_run.add_argument("--json", metavar="OUT",
                            help="also write the result as JSON to OUT")
    parser_run.set_defaults(func=cmd_run)

    parser_prof = sub.add_parser(
        "profile", help="profile an experiment (cProfile + kernel counters)")
    parser_prof.add_argument("experiment")
    parser_prof.add_argument("--quick", action="store_true",
                             help="smaller datasets")
    parser_prof.add_argument("--paper", action="store_true",
                             help="paper-sized datasets")
    parser_prof.add_argument("--seed", type=int, default=0, metavar="S",
                             help="root seed for seeded sweeps (default: 0)")
    parser_prof.add_argument("--top", type=int, default=15, metavar="N",
                             help="hot functions to show (default: 15)")
    parser_prof.add_argument("--memory", action="store_true",
                             help="also trace allocations (tracemalloc; "
                                  "slower)")
    parser_prof.add_argument("--kernel", action="store_true",
                             help="also break down the kernel fast paths "
                                  "(wheel cascades/overflow, epoch "
                                  "commits vs demotions)")
    parser_prof.add_argument("--json", metavar="OUT",
                             help="also write the report as JSON to OUT")
    parser_prof.set_defaults(func=cmd_profile)

    parser_demo = sub.add_parser("demo", help="vanilla-vs-vRead quick demo")
    parser_demo.set_defaults(func=_demo)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "quick", False) and getattr(args, "paper", False):
        parser.error("--quick and --paper are mutually exclusive")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
