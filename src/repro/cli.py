"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — enumerate the available experiments.
* ``run <name> [--quick]`` — run one experiment (or ``all``) and print its
  paper-style table(s).
* ``demo`` — the quickstart: vanilla vs vRead on one file, verified.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

EXPERIMENTS: Dict[str, str] = {
    "fig02": "HDFS-in-VM vs local read delay (motivation)",
    "fig03": "netperf TCP_RR under I/O-thread contention",
    "fig06": "CPU breakdown, co-located read",
    "fig07": "CPU breakdown, remote read (RDMA)",
    "fig08": "CPU breakdown, remote read (TCP daemons)",
    "fig09": "data access delay, vanilla vs vRead",
    "fig11": "TestDFSIO throughput (6 panels x 3 frequencies)",
    "fig12": "TestDFSIO CPU running time",
    "fig13": "TestDFSIO-write throughput (vRead_update overhead)",
    "table2": "HBase scan / sequential / random read",
    "table3": "Hive select + Sqoop export",
    "ablation-direct-read": "mounted host FS vs direct-read bypass (§6)",
    "ablation-transport": "RDMA vs TCP daemon transports",
    "ablation-ring": "shared-ring geometry sweep",
    "ablation-packet-size": "HDFS packet-size sweep",
    "ablation-cache-size": "host page-cache size vs re-read speed",
    "scale-clients": "multi-client scale-out (extension)",
    "sensitivity": "cost-model perturbation robustness",
}


def _runner_for(name: str, quick: bool) -> Callable[[], object]:
    mb = 1 << 20
    file_bytes = 8 * mb if quick else 32 * mb
    if name == "fig02":
        from repro.experiments import fig02_motivation_delay as module
        return lambda: module.run(file_bytes=(8 * mb if quick else 16 * mb))
    if name == "fig03":
        from repro.experiments import fig03_iothread_sync as module
        return lambda: module.run(duration=0.1 if quick else 0.3)
    if name in ("fig06", "fig07", "fig08"):
        from repro.experiments import cpu_breakdowns as module
        runner = {"fig06": module.run_fig06, "fig07": module.run_fig07,
                  "fig08": module.run_fig08}[name]
        return lambda: runner(file_bytes=file_bytes)
    if name == "fig09":
        from repro.experiments import fig09_vread_delay as module
        return lambda: module.run(file_bytes=(8 * mb if quick else 16 * mb))
    if name == "fig11":
        from repro.experiments import fig11_dfsio_throughput as module
        return lambda: module.run(file_bytes=file_bytes)
    if name == "fig12":
        from repro.experiments import fig12_dfsio_cputime as module
        return lambda: module.run(file_bytes=file_bytes)
    if name == "fig13":
        from repro.experiments import fig13_write_throughput as module
        return lambda: module.run(file_bytes=file_bytes)
    if name == "table2":
        from repro.experiments import table2_hbase as module
        return lambda: module.run(n_rows=8_192 if quick else 32_768)
    if name == "table3":
        from repro.experiments import table3_hive_sqoop as module
        return lambda: module.run(n_rows=65_536 if quick else 262_144)
    if name == "ablation-direct-read":
        from repro.experiments import ablation_direct_read as module
        return lambda: module.run(file_bytes=file_bytes)
    if name == "ablation-transport":
        from repro.experiments import ablation_transport as module
        return lambda: module.run(file_bytes=file_bytes)
    if name == "ablation-ring":
        from repro.experiments import ablation_ring as module
        return lambda: module.run(file_bytes=file_bytes)
    if name == "ablation-packet-size":
        from repro.experiments import ablation_packet_size as module
        return lambda: module.run(file_bytes=file_bytes)
    if name == "ablation-cache-size":
        from repro.experiments import ablation_cache_size as module
        return lambda: module.run(file_bytes=file_bytes)
    if name == "scale-clients":
        from repro.experiments import scale_clients as module
        return lambda: module.run(file_bytes=(4 * mb if quick else 16 * mb))
    if name == "sensitivity":
        from repro.experiments import sensitivity as module
        return lambda: module.run(file_bytes=(4 * mb if quick else 16 * mb))
    raise KeyError(name)


def cmd_list(_args) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, description in EXPERIMENTS.items():
        print(f"  {name.ljust(width)}  {description}")
    print("\nrun one with: python -m repro run <name>   (or 'all')")
    return 0


def cmd_run(args) -> int:
    if args.experiment == "all":
        from repro.experiments import run_all
        return run_all.main(["--quick"] if args.quick else [])
    try:
        runner = _runner_for(args.experiment, args.quick)
    except KeyError:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: python -m repro list", file=sys.stderr)
        return 2
    result = runner()
    print(result.render())
    return 0


def _demo(_args) -> int:
    from repro.cluster import VirtualHadoopCluster
    from repro.storage.content import PatternSource

    payload = PatternSource(32 << 20, seed=42)
    for mode in ("vanilla", "vRead"):
        cluster = VirtualHadoopCluster(vread=(mode == "vRead"))

        def load():
            yield from cluster.write_dataset("/demo", payload,
                                             favored=["dn1"])

        cluster.run(cluster.sim.process(load()))
        cluster.settle()
        cluster.drop_all_caches()
        start = cluster.sim.now

        def read():
            source = yield from cluster.clients.get().read_file("/demo")
            return source

        source = cluster.run(cluster.sim.process(read()))
        elapsed = cluster.sim.now - start
        assert source.checksum() == payload.checksum()
        print(f"{mode:8s} 32MB cold read: {elapsed * 1e3:7.1f} ms "
              f"({32 / elapsed:5.0f} MB/s) — data verified")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vRead (Middleware '15) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    parser_list = sub.add_parser("list", help="list experiments")
    parser_list.set_defaults(func=cmd_list)

    parser_run = sub.add_parser("run", help="run an experiment (or 'all')")
    parser_run.add_argument("experiment")
    parser_run.add_argument("--quick", action="store_true",
                            help="smaller datasets")
    parser_run.set_defaults(func=cmd_run)

    parser_demo = sub.add_parser("demo", help="vanilla-vs-vRead quick demo")
    parser_demo.set_defaults(func=_demo)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
