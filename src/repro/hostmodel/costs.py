"""The calibrated cost model: CPU cycles for every copy and crossing.

This is the **single place** where the simulation's physical constants live.
Values are chosen to be plausible for the paper's testbed (3.2 GHz Xeon
quad-core, SSD, 10 GbE RoCE, KVM with vhost-net) and were calibrated so the
*shapes* of the paper's results hold: who wins, by roughly what factor, and
where the crossovers fall.  See EXPERIMENTS.md for paper-vs-measured.

Cost vocabulary
---------------
* ``*_per_byte`` — cycles burned per byte moved (memcpy-like costs).
* ``*_per_request`` / ``*_per_segment`` — fixed cycles per operation
  (virtqueue kicks, syscall entry, interrupt delivery, protocol headers).
* Device times (SSD service, link transmission) are in seconds and do not
  scale with CPU frequency.

The vanilla inter-VM HDFS read path charges, per chunk (paper Fig 1):

1. virtio-blk: host page cache -> guest memory   (qemu I/O thread)
2. guest kernel buffer -> datanode process       (datanode vCPU)
3. datanode process -> socket (TCP tx)           (datanode vCPU)
4. inter-VM skb copy                             (vhost-net thread)
5. client kernel buffer -> client application    (client vCPU)

The vRead path charges only (paper Fig 4):

1. host page cache -> shared ring                (vRead daemon)
2. shared ring -> client application             (client vCPU, libvread)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModel:
    """Cycle and device-time constants used by every component."""

    # ------------------------------------------------------------ raw copies
    #: Plain memcpy between buffers in the same address space.
    memcpy_cycles_per_byte: float = 0.40
    #: Copy between guest kernel page cache and a guest user buffer.
    guest_user_copy_cycles_per_byte: float = 0.35

    # ------------------------------------------------------------- syscalls
    #: Guest syscall entry/exit (read/write on a file or socket).
    syscall_cycles: float = 4_000.0
    #: Host-side user<->kernel switch (the vRead TCP daemon pays these).
    host_syscall_cycles: float = 5_000.0

    # ------------------------------------------------------------ virtio-blk
    #: Guest block-layer CPU per byte actually read from the virtual device
    #: (bio handling, readahead, completion processing).  Charged as the
    #: "disk read" category on the issuing vCPU, cold reads only.
    guest_block_layer_cycles_per_byte: float = 0.10
    #: Fixed cost per virtio-blk request (vmexit, virtqueue kick, completion).
    virtio_blk_request_cycles: float = 30_000.0
    #: Per-byte copy host page cache -> guest memory through the virtqueue.
    virtio_blk_copy_cycles_per_byte: float = 0.50
    #: Virtual interrupt delivery into the guest on completion.
    virq_cycles: float = 6_000.0

    # ------------------------------------------------------------ virtio-net
    #: Guest-side TCP transmit processing per TSO segment (up to 64KB).
    tcp_tx_segment_cycles: float = 9_000.0
    #: Guest-side TCP receive processing per segment.
    tcp_rx_segment_cycles: float = 11_000.0
    #: Per-byte cost of app buffer <-> skb copies inside a guest.
    tcp_copy_cycles_per_byte: float = 0.40
    #: TSO/GRO segment size used for per-segment accounting.
    tso_segment_bytes: int = 65_536
    #: vhost-net fixed work per segment (kick handling, descriptor walk).
    vhost_segment_cycles: float = 12_000.0
    #: vhost-net per-byte inter-VM (or VM<->NIC) copy.
    vhost_copy_cycles_per_byte: float = 0.50
    #: HDFS datanode/client checksum verification per byte (CRC32 of the
    #: 64KB packet stream -- part of the vanilla read path, skipped by vRead
    #: because it reads the block file directly).
    hdfs_checksum_cycles_per_byte: float = 0.25

    # ----------------------------------------------------------- host network
    #: Host kernel network stack per segment (physical NIC path).
    host_net_segment_cycles: float = 8_000.0
    #: Host kernel per-byte copy to/from NIC ring (with large segments).
    host_net_copy_cycles_per_byte: float = 0.25

    # ----------------------------------------------------------------- RDMA
    #: Posting a work request / reaping a completion (QP + CQ handling).
    rdma_work_request_cycles: float = 2_000.0
    #: CPU per byte for RDMA -- near zero (NIC does the DMA; small cost for
    #: scatter-gather list setup on the pushing side).
    rdma_copy_cycles_per_byte: float = 0.06
    #: One-time memory-region registration per buffer.
    rdma_mr_registration_cycles: float = 15_000.0

    # ---------------------------------------------------------------- vRead
    #: Daemon fixed work per ring-slot request (dequeue, hash lookup).
    vread_request_cycles: float = 10_000.0
    #: Daemon copy: host page cache -> shared ring buffer.
    vread_copy_cycles_per_byte: float = 0.55
    #: libvread guest copy: shared ring -> application buffer.
    vread_guest_copy_cycles_per_byte: float = 0.50
    #: eventfd signal (each direction).
    eventfd_cycles: float = 2_500.0
    #: libvread call overhead, including the JNI crossing from HDFS's Java
    #: code into the C library (paper Section 4).
    vread_jni_call_cycles: float = 12_000.0
    #: Reading through the host FS mount of a datanode image (dentry/inode
    #: walk + loop device layer), per request.
    loop_device_request_cycles: float = 9_000.0
    #: Host filesystem + loop layer CPU per byte faulted from the SSD on the
    #: daemon's behalf (cold reads through the mount only).
    host_fs_read_cycles_per_byte: float = 0.08
    #: Refreshing the mount point dentry/inode cache after a new block
    #: (vRead_update); charged on the daemon.
    mount_refresh_cycles: float = 120_000.0
    #: Per-read guest->host->physical address translation when bypassing the
    #: host file system (the Section 6 "direct read" ablation mode).
    address_translation_cycles: float = 25_000.0
    #: User-space daemon TCP ("vRead-net", the paper's footnote-2 fallback):
    #: per-byte CPU on the sending and receiving daemon.  Deliberately
    #: *less* efficient per byte than in-kernel vhost-net — the paper's
    #: stated reason for preferring RDMA (Fig 8).
    vread_tcp_tx_cycles_per_byte: float = 1.0
    vread_tcp_rx_cycles_per_byte: float = 0.45

    # ------------------------------------------------------------ scheduling
    #: Context switch cost charged when a thread is dispatched onto a core.
    context_switch_cycles: float = 8_000.0
    #: Scheduler time slice in seconds (CFS-ish granularity).
    time_slice_seconds: float = 0.001
    #: CFS wake-affinity stacking: under load a woken thread sometimes lands
    #: on a busy core's runqueue (select_idle_sibling miss / wake_affine)
    #: and waits one wakeup-preemption granularity before it runs.  The
    #: probability is (busy_cores / cores) ** wakeup_stacking_exponent.
    #: This is the "synchronization delay of VMs and I/O threads" behind the
    #: paper's Figure 3 and every 4-VM scenario.
    wakeup_stacking_delay_seconds: float = 25e-6
    wakeup_stacking_exponent: float = 2.0

    # ---------------------------------------------------------------- devices
    #: SSD sequential read bandwidth (bytes/second).
    ssd_bandwidth_bytes_per_sec: float = 500e6
    #: SSD per-request service latency (seconds).
    ssd_request_latency: float = 60e-6
    #: Physical NIC line rate (bytes/second), 10 GbE.
    nic_bandwidth_bytes_per_sec: float = 1.25e9
    #: One-way LAN propagation + switching latency (seconds).
    lan_latency: float = 30e-6

    # --------------------------------------------------------------- helpers
    def segments(self, nbytes: int) -> int:
        """Number of TSO segments needed to move ``nbytes``."""
        if nbytes <= 0:
            return 0
        return -(-nbytes // self.tso_segment_bytes)

    def with_overrides(self, **overrides) -> "CostModel":
        """A copy of this model with some constants replaced."""
        return replace(self, **overrides)


#: The default, calibrated cost model used by all experiments.
DEFAULT_COSTS = CostModel()
