"""Physical host model: cores, scheduler, frequency scaling, cost model.

This package provides the substrate on which all virtualization overhead
phenomena in the paper are reproduced:

* :class:`~repro.hostmodel.cpu.CpuScheduler` — a time-sliced fair-share
  multicore scheduler.  vCPU threads, vhost-net threads, qemu I/O threads
  and vRead daemons are all :class:`~repro.hostmodel.cpu.Thread` entities
  competing for cores; wake-up queueing when all cores are busy reproduces
  the I/O-thread synchronization delays of the paper's Section 2.
* :class:`~repro.hostmodel.costs.CostModel` — the calibrated cycle costs of
  every data copy and boundary crossing (the paper's "5 data copies").
* :class:`~repro.hostmodel.host.PhysicalHost` — a machine: cores + scheduler
  + accounting + attached devices, with cpufreq-style frequency scaling.
"""

from repro.hostmodel.costs import CostModel
from repro.hostmodel.cpu import CpuScheduler, Thread
from repro.hostmodel.frequency import GHZ_1_6, GHZ_2_0, GHZ_3_2, ghz
from repro.hostmodel.host import PhysicalHost

__all__ = [
    "CostModel",
    "CpuScheduler",
    "GHZ_1_6",
    "GHZ_2_0",
    "GHZ_3_2",
    "PhysicalHost",
    "Thread",
    "ghz",
]
