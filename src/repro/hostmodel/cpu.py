"""Time-sliced fair-share multicore CPU scheduler.

Every schedulable entity on a host — vCPU threads, vhost-net threads, qemu
I/O threads, vRead daemons, lookbusy hogs — is a :class:`Thread`.  A thread
burns CPU by ``yield from thread.run(cycles, category)``: the scheduler
dispatches it onto a free core (charging a context-switch cost) or queues it
FIFO when all cores are busy.  Bursts longer than the time slice are
preempted at slice boundaries whenever other threads are waiting, giving
round-robin fair sharing.

**The wait for a free core is the paper's I/O-thread synchronization
delay**: with 2 VMs on a quad-core host every vCPU and vhost thread finds a
core immediately; with 4 VMs (2 running lookbusy) dispatch queueing delays
every boundary crossing of the vanilla HDFS read path (Figs 3 and 9).
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from typing import Deque, Optional

from repro.metrics.accounting import CpuAccounting, OTHERS
from repro.hostmodel.costs import CostModel
from repro.sim import Event, Lock, SimulationError, Simulator


class Thread:
    """A schedulable entity (vCPU, vhost-net, daemon, ...).

    A thread executes at most one burst at a time; concurrent ``run`` calls
    from different simulation processes serialize on the thread's mutex,
    modelling in-guest scheduling onto a single vCPU.
    """

    def __init__(self, scheduler: "CpuScheduler", name: str):
        self.scheduler = scheduler
        self.name = name
        self._mutex = Lock(scheduler.sim)

    def run(self, cycles: float, category: str):
        """Generator: burn ``cycles`` of CPU charged to ``category``.

        Use as ``yield from thread.run(...)`` inside a simulation process.
        """
        return self.scheduler.execute(self, cycles, category)

    def __repr__(self) -> str:
        return f"<Thread {self.name}>"


class CpuScheduler:
    """FIFO-dispatch, round-robin-preemption scheduler over ``cores`` cores."""

    def __init__(self, sim: Simulator, cores: int, frequency_hz: float,
                 accounting: CpuAccounting, costs: Optional[CostModel] = None,
                 rng: Optional[random.Random] = None, name: str = "sched"):
        if cores < 1:
            raise SimulationError(f"need at least 1 core, got {cores}")
        if frequency_hz <= 0:
            raise SimulationError(f"frequency must be positive: {frequency_hz}")
        self.sim = sim
        self.cores = cores
        self.frequency_hz = frequency_hz
        self.accounting = accounting
        self.costs = costs or CostModel()
        if rng is None:
            seed = int.from_bytes(
                hashlib.sha256(name.encode()).digest()[:8], "big")
            rng = random.Random(seed)
        self._rng = rng
        self._free_cores = cores
        self._waiting: Deque[Event] = deque()
        self._threads: list = []
        #: Wakeups that paid the CFS wake-stacking delay (observability).
        self.stacked_wakeups = 0
        #: Optional :class:`repro.metrics.tracing.Tracer` for scheduler
        #: events ('sched' category: dispatch/preempt/stacked/complete).
        self.tracer = None

    # ------------------------------------------------------------- factories
    def thread(self, name: str) -> Thread:
        """Create a new schedulable thread."""
        thread = Thread(self, name)
        self._threads.append(thread)
        return thread

    # ----------------------------------------------------------- observation
    @property
    def runnable_waiting(self) -> int:
        """Threads currently queued for a core."""
        return len(self._waiting)

    @property
    def busy_cores(self) -> int:
        return self.cores - self._free_cores

    def set_frequency(self, frequency_hz: float) -> None:
        """cpufreq-set: change the clock for all subsequent bursts."""
        if frequency_hz <= 0:
            raise SimulationError(f"frequency must be positive: {frequency_hz}")
        self.frequency_hz = frequency_hz

    def seconds(self, cycles: float) -> float:
        """Duration of ``cycles`` at the current clock."""
        return cycles / self.frequency_hz

    # ------------------------------------------------------------- core pool
    def _acquire_core(self) -> Event:
        """Event that fires when a core is granted to the caller."""
        grant = Event(self.sim)
        if self._free_cores > 0:
            self._free_cores -= 1
            grant.succeed(None)
        else:
            self._waiting.append(grant)
        return grant

    def _release_core(self) -> None:
        """Hand the core to the next waiter, or return it to the pool."""
        if self._waiting:
            self._waiting.popleft().succeed(None)
        else:
            self._free_cores += 1

    def _acquire_core_or_abort(self):
        """Generator: wait for a core; on interruption, withdraw cleanly.

        If the waiter is interrupted while queued, its grant must be pulled
        from the wait queue (or, if the grant already fired, the core must
        be returned) — otherwise the core leaks to a dead request.
        """
        grant = self._acquire_core()
        try:
            yield grant
        except BaseException:
            if grant.triggered:
                self._release_core()
            else:
                self._waiting.remove(grant)
            raise

    # -------------------------------------------------------------- execution
    def execute(self, thread: Thread, cycles: float, category: str):
        """Generator implementing a CPU burst (see :meth:`Thread.run`)."""
        if cycles < 0:
            raise SimulationError(f"negative cycle count {cycles}")
        if cycles == 0:
            return
        with thread._mutex.acquire() as token:
            yield token
            remaining = float(cycles)
            # CFS wake-affinity stacking: under load, this wakeup may land
            # behind a busy core instead of finding the idle one, waiting a
            # wakeup-preemption granularity before dispatch (Section 2's
            # I/O-thread synchronization delay).
            busy = self.busy_cores
            if busy > 0 and self.costs.wakeup_stacking_delay_seconds > 0:
                probability = ((busy / self.cores)
                               ** self.costs.wakeup_stacking_exponent)
                if self._rng.random() < probability:
                    self.stacked_wakeups += 1
                    if self.tracer is not None:
                        self.tracer.record(self.sim.now, "sched", "stacked",
                                           thread=thread.name, busy=busy)
                    yield self.sim.timeout(
                        self.costs.wakeup_stacking_delay_seconds)
            yield from self._acquire_core_or_abort()
            if self.tracer is not None:
                self.tracer.record(self.sim.now, "sched", "dispatch",
                                   thread=thread.name, cycles=cycles)
            on_core = True
            try:
                # Pay the dispatch context switch (accounted as "others").
                switch_time = self.seconds(self.costs.context_switch_cycles)
                yield self.sim.timeout(switch_time)
                self.accounting.charge(thread.name, OTHERS, switch_time)

                slice_cycles = (self.costs.time_slice_seconds
                                * self.frequency_hz)
                while remaining > 0:
                    burst = min(remaining, slice_cycles)
                    duration = self.seconds(burst)
                    yield self.sim.timeout(duration)
                    self.accounting.charge(thread.name, category, duration)
                    remaining -= burst
                    if remaining > 0 and self._waiting:
                        # Round-robin: yield the core, rejoin the queue tail.
                        if self.tracer is not None:
                            self.tracer.record(self.sim.now, "sched",
                                               "preempt", thread=thread.name,
                                               remaining=remaining)
                        self._release_core()
                        on_core = False
                        yield from self._acquire_core_or_abort()
                        on_core = True
                        switch_time = self.seconds(
                            self.costs.context_switch_cycles)
                        yield self.sim.timeout(switch_time)
                        self.accounting.charge(thread.name, OTHERS, switch_time)
                        slice_cycles = (self.costs.time_slice_seconds
                                        * self.frequency_hz)
            finally:
                if on_core:
                    self._release_core()

    def __repr__(self) -> str:
        return (f"<CpuScheduler cores={self.cores} "
                f"freq={self.frequency_hz/1e9:.1f}GHz "
                f"busy={self.busy_cores} waiting={self.runnable_waiting}>")
