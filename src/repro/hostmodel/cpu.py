"""Time-sliced fair-share multicore CPU scheduler.

Every schedulable entity on a host — vCPU threads, vhost-net threads, qemu
I/O threads, vRead daemons, lookbusy hogs — is a :class:`Thread`.  A thread
burns CPU by ``yield from thread.run(cycles, category)``: the scheduler
dispatches it onto a free core (charging a context-switch cost) or queues it
FIFO when all cores are busy.  Bursts longer than the time slice are
preempted at slice boundaries whenever other threads are waiting, giving
round-robin fair sharing.

**The wait for a free core is the paper's I/O-thread synchronization
delay**: with 2 VMs on a quad-core host every vCPU and vhost thread finds a
core immediately; with 4 VMs (2 running lookbusy) dispatch queueing delays
every boundary crossing of the vanilla HDFS read path (Figs 3 and 9).

Two scheduler implementations coexist behind the ``REPRO_LEGACY_SLICES``
toggle (mirroring ``REPRO_LEGACY_BUFFERS`` in the data plane):

* the **sliced reference** (:meth:`CpuScheduler._execute_sliced`) wakes the
  simulator at every time-slice boundary, exactly as the pre-PR5 code did;
* the **coalesced fast path** (:meth:`CpuScheduler._execute_fast`) arms one
  whole-burst timer while no thread waits for a core and *demotes* it back
  to slice granularity the moment a contender arrives, replaying the
  reference's float arithmetic (same left-fold order) so clocks, charges
  and RNG draws stay bit-for-bit identical.

Sanitize mode (``Simulator(sanitize=True)``) always runs the reference
implementation: its per-slice event ceremony is what the sanitizer's
bookkeeping instruments.

Known tie caveat: when an *unrelated* event chain lands on the exact float
instant of a slice boundary with a heap sequence number in the narrow
window the coalesced path cannot observe (created after the slice timer it
replaces would have been created), the two implementations may order that
instant differently.  The regression pins, the bench determinism gate and
the equivalence property suite all run both implementations to keep this
theoretical corner empirically empty.
"""

from __future__ import annotations

import hashlib
import os
import random
from collections import deque
from typing import Deque, Optional

from repro.metrics.accounting import CpuAccounting, OTHERS
from repro.hostmodel.costs import CostModel
from repro.sim import Event, Lock, SimulationError, Simulator
from repro.sim.events import AbsoluteTimeout

_legacy_slices = os.environ.get("REPRO_LEGACY_SLICES", "") not in ("", "0")


def use_legacy_slices(enabled: bool) -> None:
    """Route CPU bursts through the pre-PR5 slice-loop reference scheduler."""
    global _legacy_slices
    _legacy_slices = bool(enabled)


def legacy_slices_enabled() -> bool:
    """True when the slice-loop reference scheduler is selected."""
    return _legacy_slices


class legacy_slices:
    """Context manager: temporarily select the slice-loop reference."""

    def __init__(self, enabled: bool = True):
        self._enabled = enabled
        self._previous = None

    def __enter__(self) -> "legacy_slices":
        self._previous = _legacy_slices
        use_legacy_slices(self._enabled)
        return self

    def __exit__(self, *exc) -> None:
        use_legacy_slices(self._previous)


_epochs_enabled = os.environ.get("REPRO_NO_EPOCH", "") in ("", "0")


def use_epochs(enabled: bool) -> None:
    """Enable/disable contended-round epoch coalescing (fast path only)."""
    global _epochs_enabled
    _epochs_enabled = bool(enabled)


def epochs_enabled() -> bool:
    """True when contended rounds may be coalesced into epochs."""
    return _epochs_enabled


class epoch_coalescing:
    """Context manager: temporarily enable/disable epoch coalescing."""

    def __init__(self, enabled: bool = True):
        self._enabled = enabled
        self._previous = None

    def __enter__(self) -> "epoch_coalescing":
        self._previous = _epochs_enabled
        use_epochs(self._enabled)
        return self

    def __exit__(self, *exc) -> None:
        use_epochs(self._previous)


#: Epoch-coalescing observability (``python -m repro profile --kernel``).
_EPOCH_STATS = {
    "epochs_formed": 0,       # contended rounds coalesced into an epoch
    "epochs_completed": 0,    # epochs that ran to their completion horizon
    "epochs_demoted": 0,      # epochs dissolved early (arrival/freq/interrupt)
    "epochs_rejected": 0,     # replays discarded as not worth the ceremony
    "epoch_records": 0,       # slice/switch boundaries replayed arithmetically
}


def epoch_stats() -> dict:
    """Snapshot of the epoch-coalescing counters."""
    return dict(_EPOCH_STATS)


def reset_epoch_stats() -> None:
    """Zero the epoch-coalescing counters."""
    for key in _EPOCH_STATS:
        _EPOCH_STATS[key] = 0


class _Handoff:
    """Sentinel telling a parked generator how an epoch dissolved under it."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"<handoff {self.name}>"


#: Burst was virtually preempted: its grant just fired, start a fresh segment.
_H_DISPATCH = _Handoff("dispatch")
#: Burst's mid-interval cursor was restored: skip ``begin_segment``.
_H_CURSOR = _Handoff("cursor")


class Thread:
    """A schedulable entity (vCPU, vhost-net, daemon, ...).

    A thread executes at most one burst at a time; concurrent ``run`` calls
    from different simulation processes serialize on the thread's mutex,
    modelling in-guest scheduling onto a single vCPU.
    """

    def __init__(self, scheduler: "CpuScheduler", name: str):
        self.scheduler = scheduler
        self.name = name
        self._mutex = Lock(scheduler.sim)

    def run(self, cycles: float, category: str):
        """Generator: burn ``cycles`` of CPU charged to ``category``.

        Use as ``yield from thread.run(...)`` inside a simulation process.
        """
        scheduler = self.scheduler
        if _legacy_slices or scheduler.sim.sanitizer is not None:
            return scheduler._execute_sliced(self, cycles, category)
        return scheduler._execute_fast(self, cycles, category)

    def __repr__(self) -> str:
        return f"<Thread {self.name}>"


class _Burst:
    """In-flight coalesced burst state (fast path only).

    Keeps the exact slice-fold cursor — ``t`` is the last committed
    boundary, ``rem`` the cycles outstanding at that boundary — so charges
    committed lazily (at segment wake-ups, demotions, or accounting reads)
    replay the reference loop's float arithmetic: identical left-folds,
    identical per-key read-modify-write sequences.
    """

    __slots__ = ("scheduler", "thread_name", "category", "proc", "timer",
                 "armed_end", "arm_seq", "switch_end_wake", "t", "rem",
                 "switch_seconds", "switch_done", "slice_cycles",
                 "frequency_hz", "handoff", "parked_grant")

    def __init__(self, scheduler: "CpuScheduler", thread_name: str,
                 category: str, proc):
        self.scheduler = scheduler
        self.thread_name = thread_name
        self.category = category
        self.proc = proc
        self.timer = None
        self.armed_end = 0.0
        self.arm_seq = 0
        #: Epoch-dissolution handoff (None / _H_DISPATCH / _H_CURSOR); tells
        #: the generator how to resume after the engine reshaped its state.
        self.handoff = None
        #: Pending core grant minted for this burst by an epoch dissolution
        #: while its generator is parked at the main-loop yield.
        self.parked_grant = None
        #: Timer armed at the dispatch-switch end (frequency-change demote):
        #: the wake there re-folds at the new clock and must not preempt —
        #: the reference loop never preempts at a switch boundary.
        self.switch_end_wake = False
        self.t = 0.0
        self.rem = 0.0
        self.switch_seconds = 0.0
        self.switch_done = True
        self.slice_cycles = 0.0
        self.frequency_hz = 0.0

    def begin_segment(self, now: float, rem: float, switch_seconds: float,
                      slice_cycles: float, frequency_hz: float) -> None:
        self.t = now
        self.rem = rem
        self.switch_seconds = switch_seconds
        # A zero-cost switch still goes through the pending state: the
        # reference charges it unconditionally, which mints the (thread,
        # "others") accounting key even when the value is 0.0.
        self.switch_done = False
        self.slice_cycles = slice_cycles
        self.frequency_hz = frequency_hz

    def segment_end(self) -> float:
        """Absolute end of the whole remaining segment (reference fold)."""
        t = self.t
        if not self.switch_done:
            t = t + self.switch_seconds
        rem = self.rem
        S = self.slice_cycles
        freq = self.frequency_hz
        while rem > 0:
            burst = rem if rem < S else S
            t = t + burst / freq
            rem = rem - burst
        return t

    def next_boundary(self) -> float:
        """Absolute end of the first uncommitted slice.

        While the dispatch context switch is still pending this includes
        it: the reference loop cannot preempt before the first slice after
        dispatch completes.
        """
        t = self.t
        if not self.switch_done:
            t = t + self.switch_seconds
        rem = self.rem
        if rem > 0:
            burst = rem if rem < self.slice_cycles else self.slice_cycles
            t = t + burst / self.frequency_hz
        return t

    def commit(self, now: float, observer_sched: Optional[float] = None) -> None:
        """Charge every fold boundary up to and including ``now``.

        A boundary landing exactly on ``now`` is normally charged: the
        reference timer for it was created at the boundary's *start*, so a
        commit triggered by an event minted at the current instant (a
        wake-up, a demoting contender's grant) carries a higher sequence
        number, and the reference had already fired and charged by then.

        That assumption fails for *observers* — accounting reads driven by
        an event that was scheduled **before** the boundary's start (e.g. a
        probe timeout armed long ago that happens to land float-exactly on
        a slice end): in the reference, the observer's lower sequence
        number fires it *before* the slice timer, so it must not see that
        boundary charged.  Callers on an observer
        path pass the active event's schedule time (``observer_sched``);
        a boundary ending exactly at ``now`` is then charged only when the
        observer was scheduled at or after the boundary's start.  ``None``
        keeps the inclusive behaviour (the burst's own wake/interrupt path,
        or reads from outside event processing).
        """
        t = self.t
        accounting = self.scheduler.accounting
        busy = accounting._busy
        if not self.switch_done:
            end = t + self.switch_seconds
            if end > now:
                return
            if (end == now and observer_sched is not None
                    and observer_sched < t):
                return
            key = (self.thread_name, OTHERS)
            if key not in accounting._birth:
                # Back-date to the boundary the reference charged it at:
                # readers fold in birth order, so a late batched insert
                # must not reorder the float sum (see _fold_order).
                accounting._note_birth(key, end)
            busy[key] += self.switch_seconds
            t = end
            self.switch_done = True
        rem = self.rem
        if rem > 0:
            S = self.slice_cycles
            freq = self.frequency_hz
            key = (self.thread_name, self.category)
            # .get, not [] — reading a defaultdict would mint a 0.0 entry
            # for a burst that has not crossed a boundary yet, and the
            # reference only creates keys on the first real charge.
            total = busy.get(key, 0.0)
            changed = False
            while rem > 0:
                burst = rem if rem < S else S
                duration = burst / freq
                end = t + duration
                if end > now:
                    break
                if (end == now and observer_sched is not None
                        and observer_sched < t):
                    break
                if not changed and key not in accounting._birth:
                    accounting._note_birth(key, end)
                total += duration
                t = end
                rem = rem - burst
                changed = True
            if changed:
                busy[key] = total
            self.rem = rem
        self.t = t


class _EpochMember:
    """Per-participant state of a coalesced contended round (epoch).

    ``records`` is the participant's committed-boundary tape: one entry per
    fold boundary (dispatch switch or slice end) the virtual replay crossed,
    each carrying the exact charge the reference would have made *and* the
    burst cursor's post-state, so dissolving the epoch at any instant can
    restore the participant as if it had executed slice-by-slice.
    """

    __slots__ = ("burst", "records", "applied", "grant", "snap0",
                 "t", "rem", "switch_done", "switch_seconds", "slice_cycles",
                 "frequency_hz", "arm_band", "arm_order", "arm_start")

    def __init__(self, burst: _Burst, grant=None):
        self.burst = burst
        self.records = []
        #: Records already folded into the accounting (monotone pointer).
        self.applied = 0
        #: The pending core grant this participant is parked on (queued).
        self.grant = grant
        # Virtual cursor, seeded from the burst's real fold cursor.
        self.t = burst.t
        self.rem = burst.rem
        self.switch_done = burst.switch_done
        self.switch_seconds = burst.switch_seconds
        self.slice_cycles = burst.slice_cycles
        self.frequency_hz = burst.frequency_hz
        self.snap0 = (burst.t, burst.rem, burst.switch_done,
                      burst.switch_seconds, burst.slice_cycles,
                      burst.frequency_hz)
        #: Mint order of the timer covering the in-progress interval:
        #: band 0 = armed for real before the epoch formed (order is the
        #: kernel sequence number), band 1 = armed virtually by the replay
        #: (order is the replay counter).  ``(when, band, order)`` reproduces
        #: the kernel's ``(when, seq)`` tie-break exactly.
        self.arm_band = 0
        self.arm_order = burst.arm_seq
        self.arm_start = burst.t


class _Epoch:
    """One coalesced contended round: k bursts round-robining on c cores.

    Formed when every core runs a coalesced burst and every core waiter is
    a coalesced burst parked at its rotation re-acquire.  The whole
    round-robin rotation — k threads × slice quantum, switch charges, queue
    hand-offs — is replayed as closed-form arithmetic up to the first
    completion (the *horizon*); the participants' per-slice timers are
    withdrawn from the kernel and one horizon timer stands in for them all.

    Accounting reads mid-epoch fold the tape through :meth:`commit_to`
    (observer-exact: a boundary on the reader's own instant is charged only
    if its timer would have carried a lower sequence number).  Any
    perturbation — a new core waiter, a frequency change, an interrupt —
    dissolves the epoch at the current instant, restoring every participant
    to the exact state the slice-by-slice execution would be in.
    """

    __slots__ = ("scheduler", "members", "oncore0", "queue0", "pops",
                 "pop_ptr", "horizon", "finisher", "horizon_timer",
                 "fire_cb", "fresh_switch", "fresh_slice", "freq")

    #: Virtual-replay tape cap: bounds formation latency and memory.
    RECORDS_CAP = 4096
    #: Minimum wakes an epoch must elide to be worth the parking ceremony
    #: (measured break-even under lookbusy-style churn on a quad core).
    MIN_POPS = 16

    def __init__(self, scheduler: "CpuScheduler"):
        self.scheduler = scheduler
        self.members: dict = {}
        self.oncore0: list = []
        self.queue0: list = []
        #: Replayed wakes: (time, mint_time, member, upto, dispatched).
        self.pops: list = []
        self.pop_ptr = 0
        self.horizon = 0.0
        self.finisher = None
        self.horizon_timer = None
        self.fresh_switch = 0.0
        self.fresh_slice = 0.0
        self.freq = 0.0

    # ------------------------------------------------------------ replay
    def replay(self, now: float) -> bool:
        """Run the round-robin arithmetic to the first completion.

        Returns False when the epoch is not viable (too short, or the
        record cap was hit before enough wakes were elided).
        """
        # Local arithmetic over completion instants, not event scheduling:
        # the kernel never sees these entries, and the commit re-emits the
        # results through Simulator with the reference's own ordering.
        from heapq import heapify, heappush, heappop  # simlint: disable=no-direct-heapq

        scheduler = self.scheduler
        costs = scheduler.costs
        freq = scheduler.frequency_hz
        switch_seconds = costs.context_switch_cycles / freq
        fresh_slice = costs.time_slice_seconds * freq
        self.fresh_switch = switch_seconds
        self.fresh_slice = fresh_slice
        self.freq = freq
        heap = [(member.burst.armed_end, member.arm_band, member.arm_order,
                 member) for member in self.oncore0]
        heapify(heap)
        queue = deque(self.queue0)
        pops = self.pops
        counter = 0
        nrecords = 0
        cap = self.RECORDS_CAP
        while heap:
            when, band, order, member = heappop(heap)
            if nrecords >= cap:
                # Tape full: close the epoch at the last instant whose
                # wakes were all replayed (a half-replayed instant would
                # misorder same-time rotations at the fire).
                while pops and pops[-1][0] >= when:
                    pops.pop()
                if pops:
                    self.horizon = pops[-1][0]
                break
            mint_time = member.arm_start
            records = member.records
            t = member.t
            if not member.switch_done:
                end = t + member.switch_seconds
                key = (member.burst.thread_name, OTHERS)
                records.append((end, t, key, member.switch_seconds,
                                end, member.rem, True, member.switch_seconds,
                                member.slice_cycles, member.frequency_hz))
                member.switch_done = True
                member.t = end
                t = end
                nrecords += 1
            rem = member.rem
            burst_c = rem if rem < member.slice_cycles else member.slice_cycles
            duration = burst_c / member.frequency_hz
            end = t + duration
            rem = rem - burst_c
            key = (member.burst.thread_name, member.burst.category)
            records.append((end, t, key, duration, end, rem, True,
                            member.switch_seconds, member.slice_cycles,
                            member.frequency_hz))
            member.t = end
            member.rem = rem
            nrecords += 1
            if rem <= 0.0:
                # First completion: the horizon.  The finisher's real
                # resume performs the release/handoff at this instant.
                pops.append((end, mint_time, member, len(records), None))
                self.horizon = end
                self.finisher = member
                break
            # Rotation: release -> dispatch the queue head -> rejoin tail.
            head = queue.popleft()
            counter += 1
            head.switch_seconds = switch_seconds
            head.slice_cycles = fresh_slice
            head.frequency_hz = freq
            head.arm_band = 1
            head.arm_order = counter
            head.arm_start = end
            # The dispatch switch is charged on its own record right here,
            # not at the head's eventual wake: if the cap trims that wake,
            # observers folding the tape mid-epoch must still see the
            # switch the reference settle would have charged.
            switch_end = end + switch_seconds
            head.records.append((switch_end, end,
                                 (head.burst.thread_name, OTHERS),
                                 switch_seconds, switch_end, head.rem, True,
                                 switch_seconds, fresh_slice, freq))
            head.switch_done = True
            head.t = switch_end
            nrecords += 1
            head_rem = head.rem
            head_burst = (head_rem if head_rem < fresh_slice else fresh_slice)
            boundary = switch_end + head_burst / freq
            heappush(heap, (boundary, 1, counter, head))
            queue.append(member)
            pops.append((end, mint_time, member, len(records), head))
        if self.finisher is None and self.horizon == 0.0:
            return False  # cap hit before a single closable instant
        if len(self.pops) < self.MIN_POPS or self.horizon <= now:
            return False
        return True

    # ------------------------------------------------------- accounting
    def _apply_records(self, member: _EpochMember, upto: int) -> None:
        accounting = self.scheduler.accounting
        busy = accounting._busy
        birth = accounting._birth
        records = member.records
        i = member.applied
        while i < upto:
            end, start, key, duration = records[i][:4]
            if key not in birth:
                accounting._note_birth(key, end)
            busy[key] += duration
            i += 1
        _EPOCH_STATS["epoch_records"] += i - member.applied
        member.applied = i

    def commit_to(self, now: float, observer_sched) -> None:
        """Fold the tape into the accounting up to ``now`` (one pass).

        Whole wakes are applied in replay order (a wake on the observer's
        own instant only if its timer was minted at or after the observer
        was scheduled — the kernel would have fired it first); then
        per-participant partial boundaries, in ``_inflight`` order, exactly
        as the non-epoch settle hook would.
        """
        pops = self.pops
        i = self.pop_ptr
        n = len(pops)
        while i < n:
            pop_time, mint_time, member, upto, dispatched = pops[i]
            if pop_time > now:
                break
            if (pop_time == now and observer_sched is not None
                    and observer_sched < mint_time):
                break
            if member.applied < upto:
                self._apply_records(member, upto)
            i += 1
        self.pop_ptr = i
        members = self.members
        for burst in self.scheduler._inflight:
            member = members.get(burst)
            if member is None:
                continue
            records = member.records
            j = member.applied
            limit = len(records)
            while j < limit:
                end = records[j][0]
                if end > now:
                    break
                if (end == now and observer_sched is not None
                        and observer_sched < records[j][1]):
                    break
                j += 1
            if j > member.applied:
                self._apply_records(member, j)

    # ------------------------------------------------------------- roles
    def roles(self):
        """(on-core, queued, dispatch times) after the applied wakes.

        ``dispatches`` maps each member to the instant of its last applied
        virtual dispatch — needed by :meth:`restore`, because a dispatch
        resets the fold cursor to a fresh segment without leaving a record
        of its own on the tape.
        """
        oncore = list(self.oncore0)
        queue = deque(self.queue0)
        dispatches: dict = {}
        for i in range(self.pop_ptr):
            pop_time, _, member, _, dispatched = self.pops[i]
            if dispatched is None:
                continue  # completion: the finisher keeps its core
            oncore.remove(member)
            queue.popleft()
            oncore.append(dispatched)
            queue.append(member)
            dispatches[dispatched] = pop_time
        return oncore, queue, dispatches

    def restore(self, member: _EpochMember, dispatch_time=None) -> None:
        """Copy the last *applied* post-state back into the real cursor.

        A virtual dispatch after the last applied record supersedes it:
        the cursor becomes a fresh segment begun at the dispatch instant
        (its switch still pending), exactly what ``begin_segment`` would
        have produced when the reference granted the core.
        """
        burst = member.burst
        if member.applied:
            record = member.records[member.applied - 1]
            base_end = record[0]
            state = record[4:]
        else:
            base_end = None
            state = member.snap0
        if dispatch_time is not None and (base_end is None
                                          or dispatch_time >= base_end):
            burst.t = dispatch_time
            burst.rem = state[1]
            burst.switch_done = False
            burst.switch_seconds = self.fresh_switch
            burst.slice_cycles = self.fresh_slice
            burst.frequency_hz = self.freq
        else:
            (burst.t, burst.rem, burst.switch_done, burst.switch_seconds,
             burst.slice_cycles, burst.frequency_hz) = state


class CpuScheduler:
    """FIFO-dispatch, round-robin-preemption scheduler over ``cores`` cores."""

    def __init__(self, sim: Simulator, cores: int, frequency_hz: float,
                 accounting: CpuAccounting, costs: Optional[CostModel] = None,
                 rng: Optional[random.Random] = None, name: str = "sched"):
        if cores < 1:
            raise SimulationError(f"need at least 1 core, got {cores}")
        if frequency_hz <= 0:
            raise SimulationError(f"frequency must be positive: {frequency_hz}")
        self.sim = sim
        self.cores = cores
        self.frequency_hz = frequency_hz
        self.accounting = accounting
        self.costs = costs or CostModel()
        if rng is None:
            seed = int.from_bytes(
                hashlib.sha256(name.encode()).digest()[:8], "big")
            rng = random.Random(seed)
        self._rng = rng
        self._free_cores = cores
        self._waiting: Deque[Event] = deque()
        self._threads: list = []
        #: Coalesced bursts currently holding a core (fast path only).
        self._inflight: list = []
        #: Active contended-round epoch (fast path only), if any.
        self._epoch: Optional[_Epoch] = None
        #: No formation attempts before this instant (rejected-replay cache).
        self._epoch_retry_at = float("-inf")
        #: Pending rotation grants -> the coalesced burst parked on each.
        self._grant_burst: dict = {}
        #: Wakeups that paid the CFS wake-stacking delay (observability).
        self.stacked_wakeups = 0
        #: Optional :class:`repro.metrics.tracing.Tracer` for scheduler
        #: events ('sched' category: dispatch/preempt/stacked/complete).
        self.tracer = None
        # Accounting reads must first charge the already-elapsed boundaries
        # of any in-flight coalesced burst, or a measurement window ending
        # mid-burst would miss busy time the reference path had charged.
        accounting.add_settle_hook(self._settle_inflight)
        # Stamp first charges with simulated time so the fast path's
        # back-dated key births (see _Burst.commit) sort consistently
        # against charges from other components.
        accounting.set_clock(lambda: sim._now)

    # ------------------------------------------------------------- factories
    def thread(self, name: str) -> Thread:
        """Create a new schedulable thread."""
        thread = Thread(self, name)
        self._threads.append(thread)
        return thread

    def retire_thread(self, thread: Thread) -> None:
        """Remove a thread this scheduler created (VM removed/migrated away).

        The thread object stays usable for any burst already in flight —
        retirement only drops it from the scheduler's roster so a migrated
        or deleted VM does not leak one entry per lifetime thread.
        """
        try:
            self._threads.remove(thread)
        except ValueError:
            raise SimulationError(
                f"thread {thread.name!r} does not belong to this scheduler")

    # ----------------------------------------------------------- observation
    @property
    def runnable_waiting(self) -> int:
        """Threads currently queued for a core."""
        return len(self._waiting)

    @property
    def busy_cores(self) -> int:
        return self.cores - self._free_cores

    def set_frequency(self, frequency_hz: float) -> None:
        """cpufreq-set: change the clock for all subsequent bursts."""
        if frequency_hz <= 0:
            raise SimulationError(f"frequency must be positive: {frequency_hz}")
        if self._epoch is not None:
            # The replayed rotations were folded at the old clock.
            self._dissolve()
        self._epoch_retry_at = float("-inf")  # a new clock, a new verdict
        if self._inflight:
            # Segments were folded at the old clock; cut them at the end of
            # the interval currently in progress so every *later* slice is
            # re-folded at the new frequency, exactly where the reference
            # loop (which reads the clock at each slice start) would.
            self._demote_inflight(freq_change=True)
        self.frequency_hz = frequency_hz

    def seconds(self, cycles: float) -> float:
        """Duration of ``cycles`` at the current clock."""
        return cycles / self.frequency_hz

    # ------------------------------------------------------------- core pool
    def _acquire_core(self) -> Event:
        """Event that fires when a core is granted to the caller."""
        if self._epoch is not None:
            # A new contender joins the round: fall back to slice-granular
            # execution first so the joiner queues behind real timers.
            self._dissolve()
        grant = Event(self.sim)
        if self._free_cores > 0:
            self._free_cores -= 1
            grant.succeed(None)
        else:
            self._waiting.append(grant)
            if self._inflight:
                # A contender appeared: every coalesced burst falls back to
                # slice-granular round-robin at its next boundary.
                self._demote_inflight()
        return grant

    def _release_core(self) -> None:
        """Hand the core to the next waiter, or return it to the pool."""
        if self._waiting:
            self._waiting.popleft().succeed(None)
        else:
            self._free_cores += 1

    def _acquire_core_or_abort(self):
        """Generator: wait for a core; on interruption, withdraw cleanly.

        If the waiter is interrupted while queued, its grant must be pulled
        from the wait queue (or, if the grant already fired, the core must
        be returned) — otherwise the core leaks to a dead request.
        """
        grant = self._acquire_core()
        try:
            yield grant
        except BaseException:
            if grant.triggered:
                self._release_core()
            else:
                self._waiting.remove(grant)
            raise

    def _acquire_core_fast(self, burst: _Burst):
        """Rotation re-acquire for a coalesced burst.

        Like :meth:`_acquire_core_or_abort`, but registers the parked
        burst (``_grant_burst``) so a fully-coalesced contended round can
        form an epoch, and unwinds epoch state when interrupted.
        """
        grant = self._acquire_core()
        if not grant.triggered:
            self._grant_burst[grant] = burst
        try:
            yield grant
        except BaseException:
            epoch = self._epoch
            if epoch is not None and burst in epoch.members:
                if self._dissolve_for_interrupt(burst):
                    # Virtually dispatched: the victim holds a real core.
                    self._release_core()
                # else: virtually queued; the rebuild dropped our grant.
                raise
            if grant.triggered:
                if burst.handoff is _H_CURSOR:
                    # Granted by a reconstruction but interrupted before
                    # the resume: withdraw the pre-minted boundary timer.
                    burst.handoff = None
                    pending = burst.timer
                    if pending is not None:
                        if not pending.triggered:
                            pending.cancel()
                        burst.timer = None
                self._release_core()
            else:
                self._waiting.remove(grant)
            raise
        finally:
            self._grant_burst.pop(grant, None)

    # ------------------------------------------------------ epoch coalescing
    def _maybe_form_epoch(self, active: _Burst) -> None:
        """Coalesce the current contended round into an epoch, if closed.

        Called by the fast path right after ``active`` armed its contended
        next-boundary timer.  A round is *closed* when every core runs a
        coalesced burst armed exactly at its next fold boundary and every
        core waiter is a coalesced burst parked at its rotation
        re-acquire — then the whole round-robin rotation is deterministic
        until the first completion and can be replayed arithmetically.
        """
        sim = self.sim
        now = sim._now
        if now < self._epoch_retry_at:
            # A rejected replay's horizon still stands: new waiters only
            # append to the rotation tail, so the first completion — and
            # with it the verdict — cannot move earlier.  Skip the replay.
            return
        tracer = self.tracer
        if tracer is not None and tracer.wants("sched"):
            return  # per-rotation trace records must keep flowing
        if self._free_cores != 0:
            return
        oncore = []
        queued = 0
        for burst in self._inflight:
            if burst.timer is None:
                queued += 1
                continue
            if burst.switch_end_wake or burst.armed_end <= now:
                return
            if burst.armed_end != burst.next_boundary():
                return  # armed past a rotation point (mid freq dance)
            if burst is not active and len(burst.timer.callbacks or ()) != 1:
                return  # somebody else listens to this slice timer
            oncore.append(burst)
        waiting = self._waiting
        if len(oncore) != self.cores or queued != len(waiting) or not queued:
            return
        grant_burst = self._grant_burst
        members = {}
        queue0 = []
        for grant in waiting:
            parked = grant_burst.get(grant)
            if parked is None or parked.timer is not None:
                return  # a slice-loop or first-dispatch waiter: not closed
            member = _EpochMember(parked, grant)
            members[parked] = member
            queue0.append(member)
        if len(members) != queued:
            return
        epoch = _Epoch(self)
        oncore.sort(key=lambda entry: entry.arm_seq)
        for burst in oncore:
            members[burst] = _EpochMember(burst)
        epoch.members = members
        epoch.oncore0 = [members[burst] for burst in oncore]
        epoch.queue0 = queue0
        if not epoch.replay(now):
            # Too short to pay for the parking ceremony; don't re-run the
            # replay until the round it previewed has actually played out.
            _EPOCH_STATS["epochs_rejected"] += 1
            self._epoch_retry_at = max(epoch.horizon, now)
            return
        # Viable: withdraw the per-slice timers, arm one horizon timer.
        _EPOCH_STATS["epochs_formed"] += 1
        horizon_timer = AbsoluteTimeout(sim, epoch.horizon)
        fire_cb = lambda event, epoch=epoch: self._epoch_fire(epoch)  # noqa: E731
        horizon_timer.callbacks.append(fire_cb)
        epoch.horizon_timer = horizon_timer
        epoch.fire_cb = fire_cb
        finisher = epoch.finisher
        for burst in oncore:
            timer = burst.timer
            timer.cancel()
            if burst is active:
                # The generator yields whatever ``burst.timer`` holds when
                # this call returns; park it on the horizon (finisher) or
                # on an inert carrier the dissolution will transplant.
                if finisher is not None and finisher.burst is active:
                    burst.timer = horizon_timer
                else:
                    burst.timer = Event(sim)
            elif finisher is not None and finisher.burst is burst:
                # Parked mid-yield and first to complete: move its resume
                # onto the horizon timer, after the fire callback.
                horizon_timer.callbacks.extend(timer.callbacks)
                timer.callbacks = None
                proc = burst.proc
                if proc is not None and proc._target is timer:
                    proc._target = horizon_timer
                burst.timer = horizon_timer
            # Other bursts stay parked on their cancelled timers (the
            # callbacks survive cancellation); dissolution transplants.
        self._epoch = epoch

    def _reconstruct(self, epoch: _Epoch, now: float, skip=None) -> bool:
        """Re-arm every participant slice-granular at ``now``.

        ``skip`` (an :class:`_EpochMember`) has its cursor restored but is
        not re-parked: an interrupt victim unwinds through its own
        exception path, the completing finisher resumes off the firing
        horizon timer itself.  Returns True when ``skip`` virtually held a
        core at ``now``.
        """
        sim = self.sim
        oncore, queue, dispatches = epoch.roles()
        for member in epoch.members.values():
            epoch.restore(member, dispatches.get(member))
        grant_burst = self._grant_burst
        skip_on_core = False
        # Queued roles: rebuild the wait queue in virtual order.
        waiting = self._waiting
        waiting.clear()
        for member in queue:
            if member is skip:
                member.burst.handoff = None
                member.burst.parked_grant = None
                if member.grant is not None:
                    grant_burst.pop(member.grant, None)
                continue
            burst = member.burst
            grant = member.grant
            if grant is None:
                # On a core when the epoch formed; the replay preempted
                # it.  Park the generator on a fresh grant: when it fires,
                # the burst starts a fresh dispatch segment.
                carrier = burst.timer
                grant = Event(sim)
                grant.callbacks = carrier.callbacks
                carrier.callbacks = None
                proc = burst.proc
                if proc is not None and proc._target is carrier:
                    proc._target = grant
                member.grant = grant
                grant_burst[grant] = burst
                burst.timer = None
                burst.handoff = _H_DISPATCH
                burst.parked_grant = grant
            # else: still parked exactly as at formation — either at its
            # rotation re-acquire (no handoff) or on a carrier grant minted
            # by an earlier chained reconstruction (_H_DISPATCH intact).
            # Its parked state must survive untouched.
            waiting.append(grant)
        # On-core roles: fresh boundary timers, minted in the order the
        # reference minted the timers they stand in for (only same-instant
        # fire order is observable; the kernel breaks when-ties by seq).
        armed = []
        for member in oncore:
            if member is skip:
                member.burst.handoff = None
                member.burst.parked_grant = None
                skip_on_core = True
                continue
            armed.append((member.burst.next_boundary(), member.arm_band,
                          member.arm_order, member))
        armed.sort(key=lambda item: item[:3])
        for boundary, _band, _order, member in armed:
            burst = member.burst
            grant = member.grant
            if grant is not None:
                # Parked at its rotation re-acquire but virtually
                # dispatched: grant the core for real; the generator
                # resumes onto its restored mid-interval cursor.
                member.grant = None
                grant_burst.pop(grant, None)
                burst.handoff = _H_CURSOR
                burst.parked_grant = None
                # Mint its boundary timer here, in reference mint order —
                # the generator reuses it (see _H_CURSOR in _execute_fast)
                # so a seq tie at the boundary instant breaks exactly as
                # the reference's interleaved arms would.
                replacement = AbsoluteTimeout(sim, boundary)
                burst.arm_seq = sim._seq
                burst.timer = replacement
                burst.armed_end = boundary
                burst.switch_end_wake = False
                grant.succeed(None)
                continue
            carrier = burst.timer
            replacement = AbsoluteTimeout(sim, boundary)
            burst.arm_seq = sim._seq
            replacement.callbacks = carrier.callbacks
            carrier.callbacks = None
            burst.timer = replacement
            burst.armed_end = boundary
            burst.switch_end_wake = False
            proc = burst.proc
            if proc is not None and proc._target is carrier:
                proc._target = replacement
        return skip_on_core

    def _dissolve(self) -> None:
        """Dissolve the epoch at the current instant (arrival/freq change).

        Commits are inclusive: a replayed wake landing exactly on ``now``
        happened — its stand-in timer was minted before the dissolving
        event, so the reference had already fired it (the same argument as
        :meth:`_demote_inflight`).
        """
        epoch = self._epoch
        self._epoch = None
        _EPOCH_STATS["epochs_demoted"] += 1
        now = self.sim._now
        epoch.commit_to(now, None)
        horizon = epoch.horizon_timer
        try:
            horizon.callbacks.remove(epoch.fire_cb)
        except ValueError:
            pass
        horizon.cancel()
        self._reconstruct(epoch, now)

    def _dissolve_for_interrupt(self, victim: _Burst) -> bool:
        """Dissolve for an interrupt landing on ``victim``.

        The victim's cursor is restored but it is not re-parked (its
        exception path unwinds the generator).  Returns True when the
        victim virtually held a core.
        """
        epoch = self._epoch
        self._epoch = None
        _EPOCH_STATS["epochs_demoted"] += 1
        now = self.sim._now
        epoch.commit_to(now, None)
        horizon = epoch.horizon_timer
        try:
            horizon.callbacks.remove(epoch.fire_cb)
        except ValueError:
            pass
        horizon.cancel()
        return self._reconstruct(epoch, now, skip=epoch.members[victim])

    def _epoch_fire(self, epoch: _Epoch) -> None:
        """Horizon callback: the first participant completed (or the tape
        capped out); commit everything and return to slice granularity."""
        if self._epoch is not epoch:
            return  # stale: dissolved earlier this instant
        self._epoch = None
        _EPOCH_STATS["epochs_completed"] += 1
        now = self.sim._now
        epoch.commit_to(now, None)
        finisher = epoch.finisher
        skip = None
        if (finisher is not None
                and finisher.burst.timer is epoch.horizon_timer):
            # The finisher's resume rides this very event (it was parked
            # on the horizon timer): restore, don't re-park.
            skip = finisher
        self._reconstruct(epoch, now, skip=skip)

    # -------------------------------------------------- coalesced bookkeeping
    def _demote_inflight(self, freq_change: bool = False) -> None:
        """Reprogram every armed whole-burst timer to its next boundary.

        Boundaries up to and *including* now are committed first.  A
        demotion is triggered by an event created at the current instant
        (a core waiter's grant, a governor call); the reference timer for
        a boundary landing exactly at now was created a whole slice
        earlier, so it fires — charges, checks an as-yet-empty wait queue,
        and arms the next slice — before that triggering event.  The
        replacement timer therefore cuts at the *next* boundary, never at
        now.

        ``freq_change`` demotes cut at the end of the interval currently
        in progress — the dispatch switch or the current slice, whose
        durations the reference loop had already fixed — because every
        later slice must be re-folded at the new clock at the wake.
        """
        sim = self.sim
        now = sim._now
        candidates = []
        for burst in self._inflight:
            if burst.timer is None:
                continue  # between segments (preempt dance in progress)
            if burst.switch_end_wake:
                # Already waking at the earliest safe boundary; the wake
                # re-folds with fresh clock/queue state.
                continue
            if burst.armed_end == now:
                # The timer fires at the current instant: it *is* the
                # reference timer for this boundary, and its wake — later
                # this instant, in reference seq order — performs the
                # boundary check itself.  Reprogramming it here would skip
                # that check.
                continue
            # Inclusive commit, even when the demoting event was scheduled
            # in the past: the reference's queue join always rides a
            # same-instant hop (the mutex token, or a grant handed off
            # inside a boundary callback), so every reference timer for a
            # boundary landing exactly at now fires — charges, sees the
            # not-yet-joined queue, arms the next slice — before the join.
            burst.commit(now)
            candidates.append(burst)
        # Replacement timers must be minted in the order the reference
        # created the timers they stand in for — the start of each burst's
        # in-progress interval (burst.t after the commit above).
        # Two bursts re-armed at the same boundary instant then wake in
        # the reference's order; _inflight (dispatch) order would not.
        candidates.sort(key=lambda burst: (burst.t, burst.arm_seq))
        for burst in candidates:
            timer = burst.timer
            if freq_change and not burst.switch_done:
                boundary = burst.t + burst.switch_seconds
                switch_end = True
            elif freq_change and burst.rem > 0 and burst.t == now:
                # Governor call lands exactly on a slice boundary: the
                # next slice starts *now* at the new frequency (with the
                # stale slice size, like the reference).  Wake at the
                # current instant; the ordinary wake path re-folds so.
                boundary = now
                switch_end = False
            else:
                boundary = burst.next_boundary()
                switch_end = False
            if boundary == burst.armed_end:
                burst.switch_end_wake = switch_end
                continue  # already slice-granular
            timer.cancel()
            replacement = AbsoluteTimeout(sim, boundary)
            burst.arm_seq = sim._seq
            replacement.callbacks = timer.callbacks
            timer.callbacks = None
            burst.timer = replacement
            burst.armed_end = boundary
            burst.switch_end_wake = switch_end
            proc = burst.proc
            if proc is not None and proc._target is timer:
                proc._target = replacement

    def _settle_inflight(self) -> None:
        """Accounting settle hook: charge elapsed coalesced boundaries.

        The reader is an observer (see :meth:`_Burst.commit`): a probe
        whose timeout was armed before the in-progress slice began must
        not see a boundary landing float-exactly on its own wake instant —
        the reference charges that boundary strictly after the probe.
        """
        now = self.sim._now
        observer_sched = self.sim._active_sched_time
        epoch = self._epoch
        if epoch is not None:
            epoch.commit_to(now, observer_sched)
            return
        for burst in self._inflight:
            if burst.timer is not None:
                burst.commit(now, observer_sched=observer_sched)

    # -------------------------------------------------------------- execution
    def execute(self, thread: Thread, cycles: float, category: str):
        """Generator implementing a CPU burst (see :meth:`Thread.run`)."""
        if _legacy_slices or self.sim.sanitizer is not None:
            return self._execute_sliced(thread, cycles, category)
        return self._execute_fast(thread, cycles, category)

    def _execute_sliced(self, thread: Thread, cycles: float, category: str):
        """The slice-loop reference: one timer per time slice.

        This is the pre-PR5 scheduler, kept verbatim as the semantic
        reference for the coalesced fast path (``REPRO_LEGACY_SLICES=1``
        selects it; sanitize mode always uses it).
        """
        if cycles < 0:
            raise SimulationError(f"negative cycle count {cycles}")
        if cycles == 0:
            return
        tracer = self.tracer
        with thread._mutex.acquire() as token:
            yield token
            remaining = float(cycles)
            # CFS wake-affinity stacking: under load, this wakeup may land
            # behind a busy core instead of finding the idle one, waiting a
            # wakeup-preemption granularity before dispatch (Section 2's
            # I/O-thread synchronization delay).
            busy = self.busy_cores
            if busy > 0 and self.costs.wakeup_stacking_delay_seconds > 0:
                probability = ((busy / self.cores)
                               ** self.costs.wakeup_stacking_exponent)
                if self._rng.random() < probability:
                    self.stacked_wakeups += 1
                    if tracer is not None and tracer.wants("sched"):
                        tracer.record(self.sim.now, "sched", "stacked",
                                      thread=thread.name, busy=busy)
                    yield self.sim.timeout(
                        self.costs.wakeup_stacking_delay_seconds)
            yield from self._acquire_core_or_abort()
            if tracer is not None and tracer.wants("sched"):
                tracer.record(self.sim.now, "sched", "dispatch",
                              thread=thread.name, cycles=cycles)
            on_core = True
            try:
                # Pay the dispatch context switch (accounted as "others").
                switch_time = self.seconds(self.costs.context_switch_cycles)
                yield self.sim.timeout(switch_time)
                self.accounting.charge(thread.name, OTHERS, switch_time)

                slice_cycles = (self.costs.time_slice_seconds
                                * self.frequency_hz)
                while remaining > 0:
                    burst = min(remaining, slice_cycles)
                    duration = self.seconds(burst)
                    yield self.sim.timeout(duration)
                    self.accounting.charge(thread.name, category, duration)
                    remaining -= burst
                    if remaining > 0 and self._waiting:
                        # Round-robin: yield the core, rejoin the queue tail.
                        if tracer is not None and tracer.wants("sched"):
                            tracer.record(self.sim.now, "sched",
                                          "preempt", thread=thread.name,
                                          remaining=remaining)
                        self._release_core()
                        on_core = False
                        yield from self._acquire_core_or_abort()
                        on_core = True
                        switch_time = self.seconds(
                            self.costs.context_switch_cycles)
                        yield self.sim.timeout(switch_time)
                        self.accounting.charge(thread.name, OTHERS, switch_time)
                        slice_cycles = (self.costs.time_slice_seconds
                                        * self.frequency_hz)
            finally:
                if on_core:
                    self._release_core()

    def _execute_fast(self, thread: Thread, cycles: float, category: str):
        """Coalesced-burst fast path: one timer per uncontended segment.

        Event-for-event equivalent to :meth:`_execute_sliced` with two
        provably invisible eliminations:

        * the zero-delay mutex-token and core-grant round-trips are skipped
          when nothing else is scheduled at the current instant (the slot
          is assigned synchronously either way; the round-trip only matters
          when another same-instant event could interleave);
        * intermediate slice-boundary wake-ups are skipped while no thread
          waits for a core — their only effects (accounting charges, the
          next private timer) are replayed exactly by the fold in
          :class:`_Burst`, and :meth:`_demote_inflight` restores per-slice
          preemption the moment a contender arrives.
        """
        if cycles < 0:
            raise SimulationError(f"negative cycle count {cycles}")
        if cycles == 0:
            return
        sim = self.sim
        tracer = self.tracer
        resource = thread._mutex._resource
        token = None
        marker = None
        if not resource._users and sim._quiet_at(sim._now):
            # Mutex free and provably nothing can interleave: take the
            # slot synchronously, skip the token round-trip.  The shared
            # marker is safe: a capacity-1 resource holds at most one user,
            # so no ``_users`` list ever contains it twice.
            marker = _ELIDED
            resource._users.append(marker)
        else:
            token = resource.request()
        try:
            if token is not None:
                yield token
            remaining = float(cycles)
            busy = self.cores - self._free_cores
            if busy > 0 and self.costs.wakeup_stacking_delay_seconds > 0:
                probability = ((busy / self.cores)
                               ** self.costs.wakeup_stacking_exponent)
                if self._rng.random() < probability:
                    self.stacked_wakeups += 1
                    if tracer is not None and tracer.wants("sched"):
                        tracer.record(sim.now, "sched", "stacked",
                                      thread=thread.name, busy=busy)
                    yield sim.timeout(
                        self.costs.wakeup_stacking_delay_seconds)
            on_core = False
            if self._free_cores > 0 and sim._quiet_at(sim._now):
                # Same elision for the grant round-trip.
                self._free_cores -= 1
                on_core = True
            else:
                yield from self._acquire_core_or_abort()
                on_core = True
            if tracer is not None and tracer.wants("sched"):
                tracer.record(sim.now, "sched", "dispatch",
                              thread=thread.name, cycles=cycles)
            burst = _Burst(self, thread.name, category, sim._active_process)
            self._inflight.append(burst)
            try:
                pending_switch = self.seconds(self.costs.context_switch_cycles)
                slice_cycles = (self.costs.time_slice_seconds
                                * self.frequency_hz)
                while True:
                    if burst.handoff is _H_CURSOR:
                        # An epoch dissolution restored a mid-interval
                        # cursor: arm straight from it.  The reconstruction
                        # pre-minted the boundary timer (in reference mint
                        # order); reuse it rather than re-arming.
                        burst.handoff = None
                        timer = burst.timer
                        if timer is None:
                            end = burst.next_boundary()
                            timer = AbsoluteTimeout(sim, end)
                            burst.timer = timer
                            burst.armed_end = end
                            burst.arm_seq = sim._seq
                    else:
                        burst.begin_segment(sim._now, remaining,
                                            pending_switch, slice_cycles,
                                            self.frequency_hz)
                        # Born contended: arm only up to the first slice
                        # boundary, exactly where the reference would
                        # preempt.
                        end = (burst.next_boundary() if self._waiting
                               else burst.segment_end())
                        timer = AbsoluteTimeout(sim, end)
                        burst.timer = timer
                        burst.armed_end = end
                        burst.arm_seq = sim._seq
                    if (self._waiting and self._epoch is None
                            and _epochs_enabled):
                        self._maybe_form_epoch(burst)
                        timer = burst.timer  # possibly parked on the epoch
                    try:
                        yield timer
                    except BaseException:
                        # Interrupt mid-segment: charge elapsed boundaries
                        # (the in-flight partial slice is never charged,
                        # matching the reference) and unwind.
                        pending = burst.timer
                        if (burst.handoff is _H_CURSOR
                                and pending is not None
                                and pending is not timer):
                            # Interrupted between an epoch fire and the
                            # resume: the pre-minted boundary timer was
                            # never yielded; withdraw it.
                            burst.handoff = None
                            if not pending.triggered:
                                pending.cancel()
                        burst.timer = None
                        epoch = self._epoch
                        if epoch is not None and burst in epoch.members:
                            if not self._dissolve_for_interrupt(burst):
                                on_core = False  # virtually preempted
                            raise
                        grant = burst.parked_grant
                        if grant is not None:
                            # Parked queued by a dissolution.  Usually the
                            # grant never fired: withdraw it from the queue.
                            # On an end-of-run teardown the grant may have
                            # fired with the resume still undelivered — then
                            # we hold a core and the finally releases it.
                            burst.parked_grant = None
                            burst.handoff = None
                            self._grant_burst.pop(grant, None)
                            if not grant.triggered:
                                self._waiting.remove(grant)
                                on_core = False
                            raise
                        burst.commit(sim._now)
                        raise
                    handoff = burst.handoff
                    if handoff is _H_CURSOR:
                        # Re-granted a core with a restored mid-interval
                        # cursor; ``burst.timer`` holds the pre-minted
                        # boundary timer (the loop top consumes the flag).
                        continue
                    burst.timer = None
                    if handoff is _H_DISPATCH:
                        # Virtually preempted during an epoch; the grant
                        # minted at dissolution just fired: start a fresh
                        # dispatch segment (boundaries were committed by
                        # the epoch tape, nothing to commit here).
                        burst.handoff = None
                        grant = burst.parked_grant
                        burst.parked_grant = None
                        self._grant_burst.pop(grant, None)
                        remaining = burst.rem
                        pending_switch = self.seconds(
                            self.costs.context_switch_cycles)
                        slice_cycles = (self.costs.time_slice_seconds
                                        * self.frequency_hz)
                        continue
                    burst.commit(sim._now)
                    remaining = burst.rem
                    if remaining <= 0.0:
                        break
                    if burst.switch_end_wake:
                        # Frequency-change wake at the switch end: re-fold
                        # the slices at the new clock; no preemption here
                        # (the reference only preempts at slice ends).
                        # Slice size is recomputed too — the reference
                        # computes it after the switch yield, i.e. at the
                        # already-changed frequency.
                        burst.switch_end_wake = False
                        pending_switch = 0.0
                        slice_cycles = (self.costs.time_slice_seconds
                                        * self.frequency_hz)
                        continue
                    if self._waiting:
                        # Round-robin: yield the core, rejoin the queue
                        # tail.  The reacquisition context switch merges
                        # into the next segment's fold.
                        if tracer is not None and tracer.wants("sched"):
                            tracer.record(sim.now, "sched", "preempt",
                                          thread=thread.name,
                                          remaining=remaining)
                        self._release_core()
                        on_core = False
                        yield from self._acquire_core_fast(burst)
                        on_core = True
                        # An epoch may have run the burst virtually while
                        # it was parked: re-read the authoritative rem.
                        remaining = burst.rem
                        pending_switch = self.seconds(
                            self.costs.context_switch_cycles)
                        slice_cycles = (self.costs.time_slice_seconds
                                        * self.frequency_hz)
                    else:
                        # Demoted without a contender left (frequency
                        # change or drained queue): re-coalesce the rest.
                        pending_switch = 0.0
            finally:
                self._inflight.remove(burst)
                if on_core:
                    self._release_core()
        finally:
            if marker is not None:
                resource.release(marker)
            elif token.triggered:
                resource.release(token)
            else:
                resource.cancel(token)

    def __repr__(self) -> str:
        return (f"<CpuScheduler cores={self.cores} "
                f"freq={self.frequency_hz/1e9:.1f}GHz "
                f"busy={self.busy_cores} waiting={self.runnable_waiting}>")


class _MARKER:
    """Placeholder occupying a mutex slot taken via the elided fast path."""

    __slots__ = ()


_ELIDED = _MARKER()
