"""Time-sliced fair-share multicore CPU scheduler.

Every schedulable entity on a host — vCPU threads, vhost-net threads, qemu
I/O threads, vRead daemons, lookbusy hogs — is a :class:`Thread`.  A thread
burns CPU by ``yield from thread.run(cycles, category)``: the scheduler
dispatches it onto a free core (charging a context-switch cost) or queues it
FIFO when all cores are busy.  Bursts longer than the time slice are
preempted at slice boundaries whenever other threads are waiting, giving
round-robin fair sharing.

**The wait for a free core is the paper's I/O-thread synchronization
delay**: with 2 VMs on a quad-core host every vCPU and vhost thread finds a
core immediately; with 4 VMs (2 running lookbusy) dispatch queueing delays
every boundary crossing of the vanilla HDFS read path (Figs 3 and 9).

Two scheduler implementations coexist behind the ``REPRO_LEGACY_SLICES``
toggle (mirroring ``REPRO_LEGACY_BUFFERS`` in the data plane):

* the **sliced reference** (:meth:`CpuScheduler._execute_sliced`) wakes the
  simulator at every time-slice boundary, exactly as the pre-PR5 code did;
* the **coalesced fast path** (:meth:`CpuScheduler._execute_fast`) arms one
  whole-burst timer while no thread waits for a core and *demotes* it back
  to slice granularity the moment a contender arrives, replaying the
  reference's float arithmetic (same left-fold order) so clocks, charges
  and RNG draws stay bit-for-bit identical.

Sanitize mode (``Simulator(sanitize=True)``) always runs the reference
implementation: its per-slice event ceremony is what the sanitizer's
bookkeeping instruments.

Known tie caveat: when an *unrelated* event chain lands on the exact float
instant of a slice boundary with a heap sequence number in the narrow
window the coalesced path cannot observe (created after the slice timer it
replaces would have been created), the two implementations may order that
instant differently.  The regression pins, the bench determinism gate and
the equivalence property suite all run both implementations to keep this
theoretical corner empirically empty.
"""

from __future__ import annotations

import hashlib
import os
import random
from collections import deque
from typing import Deque, Optional

from repro.metrics.accounting import CpuAccounting, OTHERS
from repro.hostmodel.costs import CostModel
from repro.sim import Event, Lock, SimulationError, Simulator
from repro.sim.events import AbsoluteTimeout

_legacy_slices = os.environ.get("REPRO_LEGACY_SLICES", "") not in ("", "0")


def use_legacy_slices(enabled: bool) -> None:
    """Route CPU bursts through the pre-PR5 slice-loop reference scheduler."""
    global _legacy_slices
    _legacy_slices = bool(enabled)


def legacy_slices_enabled() -> bool:
    """True when the slice-loop reference scheduler is selected."""
    return _legacy_slices


class legacy_slices:
    """Context manager: temporarily select the slice-loop reference."""

    def __init__(self, enabled: bool = True):
        self._enabled = enabled
        self._previous = None

    def __enter__(self) -> "legacy_slices":
        self._previous = _legacy_slices
        use_legacy_slices(self._enabled)
        return self

    def __exit__(self, *exc) -> None:
        use_legacy_slices(self._previous)


class Thread:
    """A schedulable entity (vCPU, vhost-net, daemon, ...).

    A thread executes at most one burst at a time; concurrent ``run`` calls
    from different simulation processes serialize on the thread's mutex,
    modelling in-guest scheduling onto a single vCPU.
    """

    def __init__(self, scheduler: "CpuScheduler", name: str):
        self.scheduler = scheduler
        self.name = name
        self._mutex = Lock(scheduler.sim)

    def run(self, cycles: float, category: str):
        """Generator: burn ``cycles`` of CPU charged to ``category``.

        Use as ``yield from thread.run(...)`` inside a simulation process.
        """
        scheduler = self.scheduler
        if _legacy_slices or scheduler.sim.sanitizer is not None:
            return scheduler._execute_sliced(self, cycles, category)
        return scheduler._execute_fast(self, cycles, category)

    def __repr__(self) -> str:
        return f"<Thread {self.name}>"


class _Burst:
    """In-flight coalesced burst state (fast path only).

    Keeps the exact slice-fold cursor — ``t`` is the last committed
    boundary, ``rem`` the cycles outstanding at that boundary — so charges
    committed lazily (at segment wake-ups, demotions, or accounting reads)
    replay the reference loop's float arithmetic: identical left-folds,
    identical per-key read-modify-write sequences.
    """

    __slots__ = ("scheduler", "thread_name", "category", "proc", "timer",
                 "armed_end", "arm_seq", "switch_end_wake", "t", "rem",
                 "switch_seconds", "switch_done", "slice_cycles",
                 "frequency_hz")

    def __init__(self, scheduler: "CpuScheduler", thread_name: str,
                 category: str, proc):
        self.scheduler = scheduler
        self.thread_name = thread_name
        self.category = category
        self.proc = proc
        self.timer = None
        self.armed_end = 0.0
        self.arm_seq = 0
        #: Timer armed at the dispatch-switch end (frequency-change demote):
        #: the wake there re-folds at the new clock and must not preempt —
        #: the reference loop never preempts at a switch boundary.
        self.switch_end_wake = False
        self.t = 0.0
        self.rem = 0.0
        self.switch_seconds = 0.0
        self.switch_done = True
        self.slice_cycles = 0.0
        self.frequency_hz = 0.0

    def begin_segment(self, now: float, rem: float, switch_seconds: float,
                      slice_cycles: float, frequency_hz: float) -> None:
        self.t = now
        self.rem = rem
        self.switch_seconds = switch_seconds
        # A zero-cost switch still goes through the pending state: the
        # reference charges it unconditionally, which mints the (thread,
        # "others") accounting key even when the value is 0.0.
        self.switch_done = False
        self.slice_cycles = slice_cycles
        self.frequency_hz = frequency_hz

    def segment_end(self) -> float:
        """Absolute end of the whole remaining segment (reference fold)."""
        t = self.t
        if not self.switch_done:
            t = t + self.switch_seconds
        rem = self.rem
        S = self.slice_cycles
        freq = self.frequency_hz
        while rem > 0:
            burst = rem if rem < S else S
            t = t + burst / freq
            rem = rem - burst
        return t

    def next_boundary(self) -> float:
        """Absolute end of the first uncommitted slice.

        While the dispatch context switch is still pending this includes
        it: the reference loop cannot preempt before the first slice after
        dispatch completes.
        """
        t = self.t
        if not self.switch_done:
            t = t + self.switch_seconds
        rem = self.rem
        if rem > 0:
            burst = rem if rem < self.slice_cycles else self.slice_cycles
            t = t + burst / self.frequency_hz
        return t

    def commit(self, now: float, observer_sched: Optional[float] = None) -> None:
        """Charge every fold boundary up to and including ``now``.

        A boundary landing exactly on ``now`` is normally charged: the
        reference timer for it was created at the boundary's *start*, so a
        commit triggered by an event minted at the current instant (a
        wake-up, a demoting contender's grant) carries a higher sequence
        number, and the reference had already fired and charged by then.

        That assumption fails for *observers* — accounting reads driven by
        an event that was scheduled **before** the boundary's start (e.g. a
        probe timeout armed long ago that happens to land float-exactly on
        a slice end): in the reference, the observer's lower sequence
        number fires it *before* the slice timer, so it must not see that
        boundary charged.  Callers on an observer
        path pass the active event's schedule time (``observer_sched``);
        a boundary ending exactly at ``now`` is then charged only when the
        observer was scheduled at or after the boundary's start.  ``None``
        keeps the inclusive behaviour (the burst's own wake/interrupt path,
        or reads from outside event processing).
        """
        t = self.t
        accounting = self.scheduler.accounting
        busy = accounting._busy
        if not self.switch_done:
            end = t + self.switch_seconds
            if end > now:
                return
            if (end == now and observer_sched is not None
                    and observer_sched < t):
                return
            key = (self.thread_name, OTHERS)
            if key not in accounting._birth:
                # Back-date to the boundary the reference charged it at:
                # readers fold in birth order, so a late batched insert
                # must not reorder the float sum (see _fold_order).
                accounting._note_birth(key, end)
            busy[key] += self.switch_seconds
            t = end
            self.switch_done = True
        rem = self.rem
        if rem > 0:
            S = self.slice_cycles
            freq = self.frequency_hz
            key = (self.thread_name, self.category)
            # .get, not [] — reading a defaultdict would mint a 0.0 entry
            # for a burst that has not crossed a boundary yet, and the
            # reference only creates keys on the first real charge.
            total = busy.get(key, 0.0)
            changed = False
            while rem > 0:
                burst = rem if rem < S else S
                duration = burst / freq
                end = t + duration
                if end > now:
                    break
                if (end == now and observer_sched is not None
                        and observer_sched < t):
                    break
                if not changed and key not in accounting._birth:
                    accounting._note_birth(key, end)
                total += duration
                t = end
                rem = rem - burst
                changed = True
            if changed:
                busy[key] = total
            self.rem = rem
        self.t = t


class CpuScheduler:
    """FIFO-dispatch, round-robin-preemption scheduler over ``cores`` cores."""

    def __init__(self, sim: Simulator, cores: int, frequency_hz: float,
                 accounting: CpuAccounting, costs: Optional[CostModel] = None,
                 rng: Optional[random.Random] = None, name: str = "sched"):
        if cores < 1:
            raise SimulationError(f"need at least 1 core, got {cores}")
        if frequency_hz <= 0:
            raise SimulationError(f"frequency must be positive: {frequency_hz}")
        self.sim = sim
        self.cores = cores
        self.frequency_hz = frequency_hz
        self.accounting = accounting
        self.costs = costs or CostModel()
        if rng is None:
            seed = int.from_bytes(
                hashlib.sha256(name.encode()).digest()[:8], "big")
            rng = random.Random(seed)
        self._rng = rng
        self._free_cores = cores
        self._waiting: Deque[Event] = deque()
        self._threads: list = []
        #: Coalesced bursts currently holding a core (fast path only).
        self._inflight: list = []
        #: Wakeups that paid the CFS wake-stacking delay (observability).
        self.stacked_wakeups = 0
        #: Optional :class:`repro.metrics.tracing.Tracer` for scheduler
        #: events ('sched' category: dispatch/preempt/stacked/complete).
        self.tracer = None
        # Accounting reads must first charge the already-elapsed boundaries
        # of any in-flight coalesced burst, or a measurement window ending
        # mid-burst would miss busy time the reference path had charged.
        accounting.add_settle_hook(self._settle_inflight)
        # Stamp first charges with simulated time so the fast path's
        # back-dated key births (see _Burst.commit) sort consistently
        # against charges from other components.
        accounting.set_clock(lambda: sim._now)

    # ------------------------------------------------------------- factories
    def thread(self, name: str) -> Thread:
        """Create a new schedulable thread."""
        thread = Thread(self, name)
        self._threads.append(thread)
        return thread

    def retire_thread(self, thread: Thread) -> None:
        """Remove a thread this scheduler created (VM removed/migrated away).

        The thread object stays usable for any burst already in flight —
        retirement only drops it from the scheduler's roster so a migrated
        or deleted VM does not leak one entry per lifetime thread.
        """
        try:
            self._threads.remove(thread)
        except ValueError:
            raise SimulationError(
                f"thread {thread.name!r} does not belong to this scheduler")

    # ----------------------------------------------------------- observation
    @property
    def runnable_waiting(self) -> int:
        """Threads currently queued for a core."""
        return len(self._waiting)

    @property
    def busy_cores(self) -> int:
        return self.cores - self._free_cores

    def set_frequency(self, frequency_hz: float) -> None:
        """cpufreq-set: change the clock for all subsequent bursts."""
        if frequency_hz <= 0:
            raise SimulationError(f"frequency must be positive: {frequency_hz}")
        if self._inflight:
            # Segments were folded at the old clock; cut them at the end of
            # the interval currently in progress so every *later* slice is
            # re-folded at the new frequency, exactly where the reference
            # loop (which reads the clock at each slice start) would.
            self._demote_inflight(freq_change=True)
        self.frequency_hz = frequency_hz

    def seconds(self, cycles: float) -> float:
        """Duration of ``cycles`` at the current clock."""
        return cycles / self.frequency_hz

    # ------------------------------------------------------------- core pool
    def _acquire_core(self) -> Event:
        """Event that fires when a core is granted to the caller."""
        grant = Event(self.sim)
        if self._free_cores > 0:
            self._free_cores -= 1
            grant.succeed(None)
        else:
            self._waiting.append(grant)
            if self._inflight:
                # A contender appeared: every coalesced burst falls back to
                # slice-granular round-robin at its next boundary.
                self._demote_inflight()
        return grant

    def _release_core(self) -> None:
        """Hand the core to the next waiter, or return it to the pool."""
        if self._waiting:
            self._waiting.popleft().succeed(None)
        else:
            self._free_cores += 1

    def _acquire_core_or_abort(self):
        """Generator: wait for a core; on interruption, withdraw cleanly.

        If the waiter is interrupted while queued, its grant must be pulled
        from the wait queue (or, if the grant already fired, the core must
        be returned) — otherwise the core leaks to a dead request.
        """
        grant = self._acquire_core()
        try:
            yield grant
        except BaseException:
            if grant.triggered:
                self._release_core()
            else:
                self._waiting.remove(grant)
            raise

    # -------------------------------------------------- coalesced bookkeeping
    def _demote_inflight(self, freq_change: bool = False) -> None:
        """Reprogram every armed whole-burst timer to its next boundary.

        Boundaries up to and *including* now are committed first.  A
        demotion is triggered by an event created at the current instant
        (a core waiter's grant, a governor call); the reference timer for
        a boundary landing exactly at now was created a whole slice
        earlier, so it fires — charges, checks an as-yet-empty wait queue,
        and arms the next slice — before that triggering event.  The
        replacement timer therefore cuts at the *next* boundary, never at
        now.

        ``freq_change`` demotes cut at the end of the interval currently
        in progress — the dispatch switch or the current slice, whose
        durations the reference loop had already fixed — because every
        later slice must be re-folded at the new clock at the wake.
        """
        sim = self.sim
        now = sim._now
        candidates = []
        for burst in self._inflight:
            if burst.timer is None:
                continue  # between segments (preempt dance in progress)
            if burst.switch_end_wake:
                # Already waking at the earliest safe boundary; the wake
                # re-folds with fresh clock/queue state.
                continue
            if burst.armed_end == now:
                # The timer fires at the current instant: it *is* the
                # reference timer for this boundary, and its wake — later
                # this instant, in reference seq order — performs the
                # boundary check itself.  Reprogramming it here would skip
                # that check.
                continue
            # Inclusive commit, even when the demoting event was scheduled
            # in the past: the reference's queue join always rides a
            # same-instant hop (the mutex token, or a grant handed off
            # inside a boundary callback), so every reference timer for a
            # boundary landing exactly at now fires — charges, sees the
            # not-yet-joined queue, arms the next slice — before the join.
            burst.commit(now)
            candidates.append(burst)
        # Replacement timers must be minted in the order the reference
        # created the timers they stand in for — the start of each burst's
        # in-progress interval (burst.t after the commit above).
        # Two bursts re-armed at the same boundary instant then wake in
        # the reference's order; _inflight (dispatch) order would not.
        candidates.sort(key=lambda burst: (burst.t, burst.arm_seq))
        for burst in candidates:
            timer = burst.timer
            if freq_change and not burst.switch_done:
                boundary = burst.t + burst.switch_seconds
                switch_end = True
            elif freq_change and burst.rem > 0 and burst.t == now:
                # Governor call lands exactly on a slice boundary: the
                # next slice starts *now* at the new frequency (with the
                # stale slice size, like the reference).  Wake at the
                # current instant; the ordinary wake path re-folds so.
                boundary = now
                switch_end = False
            else:
                boundary = burst.next_boundary()
                switch_end = False
            if boundary == burst.armed_end:
                burst.switch_end_wake = switch_end
                continue  # already slice-granular
            timer.cancel()
            replacement = AbsoluteTimeout(sim, boundary)
            burst.arm_seq = sim._seq
            replacement.callbacks = timer.callbacks
            timer.callbacks = None
            burst.timer = replacement
            burst.armed_end = boundary
            burst.switch_end_wake = switch_end
            proc = burst.proc
            if proc is not None and proc._target is timer:
                proc._target = replacement

    def _settle_inflight(self) -> None:
        """Accounting settle hook: charge elapsed coalesced boundaries.

        The reader is an observer (see :meth:`_Burst.commit`): a probe
        whose timeout was armed before the in-progress slice began must
        not see a boundary landing float-exactly on its own wake instant —
        the reference charges that boundary strictly after the probe.
        """
        now = self.sim._now
        observer_sched = self.sim._active_sched_time
        for burst in self._inflight:
            if burst.timer is not None:
                burst.commit(now, observer_sched=observer_sched)

    # -------------------------------------------------------------- execution
    def execute(self, thread: Thread, cycles: float, category: str):
        """Generator implementing a CPU burst (see :meth:`Thread.run`)."""
        if _legacy_slices or self.sim.sanitizer is not None:
            return self._execute_sliced(thread, cycles, category)
        return self._execute_fast(thread, cycles, category)

    def _execute_sliced(self, thread: Thread, cycles: float, category: str):
        """The slice-loop reference: one timer per time slice.

        This is the pre-PR5 scheduler, kept verbatim as the semantic
        reference for the coalesced fast path (``REPRO_LEGACY_SLICES=1``
        selects it; sanitize mode always uses it).
        """
        if cycles < 0:
            raise SimulationError(f"negative cycle count {cycles}")
        if cycles == 0:
            return
        tracer = self.tracer
        with thread._mutex.acquire() as token:
            yield token
            remaining = float(cycles)
            # CFS wake-affinity stacking: under load, this wakeup may land
            # behind a busy core instead of finding the idle one, waiting a
            # wakeup-preemption granularity before dispatch (Section 2's
            # I/O-thread synchronization delay).
            busy = self.busy_cores
            if busy > 0 and self.costs.wakeup_stacking_delay_seconds > 0:
                probability = ((busy / self.cores)
                               ** self.costs.wakeup_stacking_exponent)
                if self._rng.random() < probability:
                    self.stacked_wakeups += 1
                    if tracer is not None and tracer.wants("sched"):
                        tracer.record(self.sim.now, "sched", "stacked",
                                      thread=thread.name, busy=busy)
                    yield self.sim.timeout(
                        self.costs.wakeup_stacking_delay_seconds)
            yield from self._acquire_core_or_abort()
            if tracer is not None and tracer.wants("sched"):
                tracer.record(self.sim.now, "sched", "dispatch",
                              thread=thread.name, cycles=cycles)
            on_core = True
            try:
                # Pay the dispatch context switch (accounted as "others").
                switch_time = self.seconds(self.costs.context_switch_cycles)
                yield self.sim.timeout(switch_time)
                self.accounting.charge(thread.name, OTHERS, switch_time)

                slice_cycles = (self.costs.time_slice_seconds
                                * self.frequency_hz)
                while remaining > 0:
                    burst = min(remaining, slice_cycles)
                    duration = self.seconds(burst)
                    yield self.sim.timeout(duration)
                    self.accounting.charge(thread.name, category, duration)
                    remaining -= burst
                    if remaining > 0 and self._waiting:
                        # Round-robin: yield the core, rejoin the queue tail.
                        if tracer is not None and tracer.wants("sched"):
                            tracer.record(self.sim.now, "sched",
                                          "preempt", thread=thread.name,
                                          remaining=remaining)
                        self._release_core()
                        on_core = False
                        yield from self._acquire_core_or_abort()
                        on_core = True
                        switch_time = self.seconds(
                            self.costs.context_switch_cycles)
                        yield self.sim.timeout(switch_time)
                        self.accounting.charge(thread.name, OTHERS, switch_time)
                        slice_cycles = (self.costs.time_slice_seconds
                                        * self.frequency_hz)
            finally:
                if on_core:
                    self._release_core()

    def _execute_fast(self, thread: Thread, cycles: float, category: str):
        """Coalesced-burst fast path: one timer per uncontended segment.

        Event-for-event equivalent to :meth:`_execute_sliced` with two
        provably invisible eliminations:

        * the zero-delay mutex-token and core-grant round-trips are skipped
          when nothing else is scheduled at the current instant (the slot
          is assigned synchronously either way; the round-trip only matters
          when another same-instant event could interleave);
        * intermediate slice-boundary wake-ups are skipped while no thread
          waits for a core — their only effects (accounting charges, the
          next private timer) are replayed exactly by the fold in
          :class:`_Burst`, and :meth:`_demote_inflight` restores per-slice
          preemption the moment a contender arrives.
        """
        if cycles < 0:
            raise SimulationError(f"negative cycle count {cycles}")
        if cycles == 0:
            return
        sim = self.sim
        tracer = self.tracer
        resource = thread._mutex._resource
        heap = sim._heap
        token = None
        marker = None
        if not resource._users and (not heap or heap[0][0] > sim._now):
            # Mutex free and provably nothing can interleave: take the
            # slot synchronously, skip the token round-trip.  The shared
            # marker is safe: a capacity-1 resource holds at most one user,
            # so no ``_users`` list ever contains it twice.
            marker = _ELIDED
            resource._users.append(marker)
        else:
            token = resource.request()
        try:
            if token is not None:
                yield token
            remaining = float(cycles)
            busy = self.cores - self._free_cores
            if busy > 0 and self.costs.wakeup_stacking_delay_seconds > 0:
                probability = ((busy / self.cores)
                               ** self.costs.wakeup_stacking_exponent)
                if self._rng.random() < probability:
                    self.stacked_wakeups += 1
                    if tracer is not None and tracer.wants("sched"):
                        tracer.record(sim.now, "sched", "stacked",
                                      thread=thread.name, busy=busy)
                    yield sim.timeout(
                        self.costs.wakeup_stacking_delay_seconds)
            on_core = False
            if self._free_cores > 0 and (not heap or heap[0][0] > sim._now):
                # Same elision for the grant round-trip.
                self._free_cores -= 1
                on_core = True
            else:
                yield from self._acquire_core_or_abort()
                on_core = True
            if tracer is not None and tracer.wants("sched"):
                tracer.record(sim.now, "sched", "dispatch",
                              thread=thread.name, cycles=cycles)
            burst = _Burst(self, thread.name, category, sim._active_process)
            self._inflight.append(burst)
            try:
                pending_switch = self.seconds(self.costs.context_switch_cycles)
                slice_cycles = (self.costs.time_slice_seconds
                                * self.frequency_hz)
                while True:
                    burst.begin_segment(sim._now, remaining, pending_switch,
                                        slice_cycles, self.frequency_hz)
                    # Born contended: arm only up to the first slice
                    # boundary, exactly where the reference would preempt.
                    end = (burst.next_boundary() if self._waiting
                           else burst.segment_end())
                    timer = AbsoluteTimeout(sim, end)
                    burst.timer = timer
                    burst.armed_end = end
                    burst.arm_seq = sim._seq
                    try:
                        yield timer
                    except BaseException:
                        # Interrupt mid-segment: charge elapsed boundaries
                        # (the in-flight partial slice is never charged,
                        # matching the reference) and unwind.
                        burst.timer = None
                        burst.commit(sim._now)
                        raise
                    burst.timer = None
                    burst.commit(sim._now)
                    remaining = burst.rem
                    if remaining <= 0.0:
                        break
                    if burst.switch_end_wake:
                        # Frequency-change wake at the switch end: re-fold
                        # the slices at the new clock; no preemption here
                        # (the reference only preempts at slice ends).
                        # Slice size is recomputed too — the reference
                        # computes it after the switch yield, i.e. at the
                        # already-changed frequency.
                        burst.switch_end_wake = False
                        pending_switch = 0.0
                        slice_cycles = (self.costs.time_slice_seconds
                                        * self.frequency_hz)
                        continue
                    if self._waiting:
                        # Round-robin: yield the core, rejoin the queue
                        # tail.  The reacquisition context switch merges
                        # into the next segment's fold.
                        if tracer is not None and tracer.wants("sched"):
                            tracer.record(sim.now, "sched", "preempt",
                                          thread=thread.name,
                                          remaining=remaining)
                        self._release_core()
                        on_core = False
                        yield from self._acquire_core_or_abort()
                        on_core = True
                        pending_switch = self.seconds(
                            self.costs.context_switch_cycles)
                        slice_cycles = (self.costs.time_slice_seconds
                                        * self.frequency_hz)
                    else:
                        # Demoted without a contender left (frequency
                        # change or drained queue): re-coalesce the rest.
                        pending_switch = 0.0
            finally:
                self._inflight.remove(burst)
                if on_core:
                    self._release_core()
        finally:
            if marker is not None:
                resource.release(marker)
            elif token.triggered:
                resource.release(token)
            else:
                resource.cancel(token)

    def __repr__(self) -> str:
        return (f"<CpuScheduler cores={self.cores} "
                f"freq={self.frequency_hz/1e9:.1f}GHz "
                f"busy={self.busy_cores} waiting={self.runnable_waiting}>")


class _MARKER:
    """Placeholder occupying a mutex slot taken via the elided fast path."""

    __slots__ = ()


_ELIDED = _MARKER()
