"""CPU frequency presets matching the paper's cpufreq-set experiments.

The paper emulates low-power and high-frequency processors by pinning the
Xeon's frequency to 1.6, 2.0 and 3.2 GHz.  All cycle costs in the model are
frequency-independent; durations are ``cycles / frequency``.
"""


def ghz(value: float) -> float:
    """Convert GHz to Hz."""
    if value <= 0:
        raise ValueError(f"frequency must be positive, got {value}")
    return value * 1e9


#: The three frequencies the paper sweeps (Figs 11 and 12).
GHZ_1_6 = ghz(1.6)
GHZ_2_0 = ghz(2.0)
GHZ_3_2 = ghz(3.2)

#: Sweep order used by the DFSIO experiments.
PAPER_FREQUENCIES = (GHZ_1_6, GHZ_2_0, GHZ_3_2)


def frequency_label(hz: float) -> str:
    """Human-readable label, e.g. ``'2.0GHz'``."""
    return f"{hz / 1e9:.1f}GHz"
