"""The physical machine: cores + scheduler + storage + host page cache.

Matches the paper's testbed node: quad-core Xeon (frequency settable to
1.6/2.0/3.2 GHz via cpufreq), one storage device holding all VM disk
images (the paper's SSD by default; any
:class:`~repro.storage.device.DeviceProfile` tier via ``storage=``), a
10 Gbps RoCE NIC (attached by the network layer), running KVM.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hostmodel.costs import CostModel
from repro.hostmodel.cpu import CpuScheduler, Thread
from repro.metrics.accounting import CpuAccounting
from repro.sim import Simulator
from repro.storage.device import (
    ProfileLike,
    StorageDevice,
    make_device,
    resolve_profile,
)
from repro.storage.image import DiskImage
from repro.storage.loopdev import LoopMount
from repro.storage.pagecache import PageCache


class PhysicalHost:
    """A virtualization host in the simulated cluster."""

    def __init__(self, sim: Simulator, name: str, cores: int = 4,
                 frequency_hz: float = 3.2e9,
                 costs: Optional[CostModel] = None,
                 host_cache_bytes: float = float("inf"),
                 storage: ProfileLike = None):
        self.sim = sim
        self.name = name
        self.costs = costs or CostModel()
        self.accounting = CpuAccounting()
        self.scheduler = CpuScheduler(sim, cores, frequency_hz,
                                      self.accounting, self.costs,
                                      name=f"{name}.sched")
        profile = resolve_profile(storage)
        #: The host's image-holding block device (SSD unless the topology
        #: declares another tier).
        self.storage: StorageDevice = make_device(
            sim, profile, costs=self.costs,
            name=f"{name}.{profile.tier}")
        #: Host kernel page cache over VM disk-image pages.
        self.page_cache = PageCache(host_cache_bytes, name=f"{name}.pagecache")
        #: VMs placed on this host (appended by the virt layer).
        self.vms: List = []
        #: Read-only loop mounts of datanode images (by image name).
        self.mounts: Dict[str, LoopMount] = {}
        #: Physical NIC (attached by the network layer when wired to a LAN).
        self.nic = None
        #: Rack name (stamped by the network layer; None = unattached).
        self.rack: Optional[str] = None

    # --------------------------------------------------------------- storage
    @property
    def ssd(self) -> StorageDevice:
        """Legacy name for :attr:`storage` (pre-profile code paths)."""
        return self.storage

    @property
    def storage_tier(self) -> str:
        """The device-class name of this host's storage ("ssd", ...)."""
        return self.storage.profile.tier

    # ------------------------------------------------------------------ CPU
    @property
    def cores(self) -> int:
        return self.scheduler.cores

    @property
    def frequency_hz(self) -> float:
        return self.scheduler.frequency_hz

    def set_frequency(self, frequency_hz: float) -> None:
        """cpufreq-set: pin all cores to ``frequency_hz``."""
        self.scheduler.set_frequency(frequency_hz)

    def thread(self, name: str) -> Thread:
        """Create a host-level schedulable thread (daemons, vhost, ...)."""
        return self.scheduler.thread(f"{self.name}.{name}")

    # ---------------------------------------------------------------- mounts
    def mount_image(self, image: DiskImage) -> LoopMount:
        """losetup/kpartx: mount a VM disk image read-only under /mnt."""
        if image.name in self.mounts:
            return self.mounts[image.name]
        mount = LoopMount(image, mount_point=f"/mnt/{image.name}")
        self.mounts[image.name] = mount
        return mount

    def unmount_image(self, image_name: str) -> None:
        if image_name not in self.mounts:
            raise KeyError(f"{image_name!r} is not mounted on {self.name}")
        del self.mounts[image_name]

    # ----------------------------------------------------------------- cache
    def drop_caches(self) -> None:
        """Drop the host page cache (the paper's cold-read preparation)."""
        self.page_cache.drop()

    def __repr__(self) -> str:
        return (f"<PhysicalHost {self.name} cores={self.cores} "
                f"freq={self.frequency_hz/1e9:.1f}GHz vms={len(self.vms)}>")
