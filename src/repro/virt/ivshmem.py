"""The ivshmem-style shared-memory ring buffer.

vRead shares a POSIX SHM object between each guest and its per-VM daemon,
exposed to the guest as a virtual PCI device and divided into slots
(default 1024 x 4 KiB) forming a ring (paper Sections 3.3 and 4).  Messages
occupy ``ceil(size / slot_bytes)`` slots; producers block when the ring is
full (backpressure), and consumers release the slots after copying data
out.  Per-slot spinlock costs are folded into the per-request cycle costs
charged by the channel users.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional, Tuple

from repro.sim import Container, SimulationError, Simulator, Store


class SharedRing:
    """A slot-based ring buffer shared between a guest and the hypervisor."""

    def __init__(self, sim: Simulator, slots: int = 1024,
                 slot_bytes: int = 4096, name: str = "vread-ring"):
        if slots < 1 or slot_bytes < 1:
            raise SimulationError("ring needs positive slots and slot size")
        self.sim = sim
        self.name = name
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._free_slots = Container(sim, capacity=slots, init=slots)
        self._messages = Store(sim)
        self.max_occupancy = 0

    def slots_for(self, nbytes: int) -> int:
        """Slots needed for a payload of ``nbytes`` (min 1: headers)."""
        if nbytes < 0:
            raise ValueError(f"negative payload size {nbytes}")
        return max(1, -(-nbytes // self.slot_bytes))

    @property
    def capacity_bytes(self) -> int:
        return self.slots * self.slot_bytes

    @property
    def occupied_slots(self) -> int:
        return self.slots - int(self._free_slots.level)

    def put(self, payload: Any, nbytes: int):
        """Generator: write a message into the ring (blocks when full)."""
        needed = self.slots_for(nbytes)
        if needed > self.slots:
            raise SimulationError(
                f"message of {nbytes}B needs {needed} slots, ring has "
                f"{self.slots} — chunk it")
        yield self._free_slots.get(needed)
        self.max_occupancy = max(self.max_occupancy, self.occupied_slots)
        yield self._messages.put((payload, nbytes, needed))

    def get(self):
        """Generator: read the next message; frees its slots immediately
        (the consumer copies data out before releasing in reality — the copy
        cost is charged by the caller, so ordering is equivalent).

        Returns ``(payload, nbytes)``.
        """
        payload, nbytes, needed = yield self._messages.get()
        yield self._free_slots.put(needed)
        return payload, nbytes

    def __repr__(self) -> str:
        return (f"<SharedRing {self.name} {self.occupied_slots}/{self.slots} "
                f"slots x {self.slot_bytes}B>")
