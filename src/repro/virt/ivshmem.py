"""The ivshmem-style shared-memory ring buffer.

vRead shares a POSIX SHM object between each guest and its per-VM daemon,
exposed to the guest as a virtual PCI device and divided into slots
(default 1024 x 4 KiB) forming a ring (paper Sections 3.3 and 4).  Messages
occupy ``ceil(size / slot_bytes)`` slots; producers block when the ring is
full (backpressure), and consumers release the slots after copying data
out.  Per-slot spinlock costs are folded into the per-request cycle costs
charged by the channel users.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional, Tuple

from repro.sim import Container, Event, SimulationError, Simulator, Store


class SharedRing:
    """A slot-based ring buffer shared between a guest and the hypervisor.

    A *stall* (:meth:`stall`/:meth:`unstall`) models the shared-memory
    device wedging — e.g. the hypervisor de-scheduling the daemon's
    polling core: producers and consumers block at the ring until it is
    unstalled.  Time still advances, so deadline-bounded conversations
    above the ring time out and degrade gracefully.
    """

    def __init__(self, sim: Simulator, slots: int = 1024,
                 slot_bytes: int = 4096, name: str = "vread-ring"):
        if slots < 1 or slot_bytes < 1:
            raise SimulationError("ring needs positive slots and slot size")
        self.sim = sim
        self.name = name
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._free_slots = Container(sim, capacity=slots, init=slots)
        self._messages = Store(sim)
        self.max_occupancy = 0
        self._stalled: Optional[Event] = None
        self.stall_count = 0

    @property
    def stalled(self) -> bool:
        return self._stalled is not None

    def stall(self) -> None:
        """Wedge the ring: put/get block until :meth:`unstall`."""
        if self._stalled is None:
            self._stalled = Event(self.sim)
            self.stall_count += 1

    def unstall(self) -> None:
        """Release a stalled ring; blocked producers/consumers resume."""
        if self._stalled is not None:
            released, self._stalled = self._stalled, None
            released.succeed()

    def _wait_unstalled(self):
        while self._stalled is not None:
            yield self._stalled

    def slots_for(self, nbytes: int) -> int:
        """Slots needed for a payload of ``nbytes`` (min 1: headers)."""
        if nbytes < 0:
            raise ValueError(f"negative payload size {nbytes}")
        return max(1, -(-nbytes // self.slot_bytes))

    @property
    def capacity_bytes(self) -> int:
        return self.slots * self.slot_bytes

    @property
    def occupied_slots(self) -> int:
        return self.slots - int(self._free_slots.level)

    def put(self, payload: Any, nbytes: int):
        """Generator: write a message into the ring (blocks when full)."""
        needed = self.slots_for(nbytes)
        if needed > self.slots:
            raise SimulationError(
                f"message of {nbytes}B needs {needed} slots, ring has "
                f"{self.slots} — chunk it")
        yield from self._wait_unstalled()
        yield self._free_slots.get(needed)
        occupied = self.slots - int(self._free_slots.level)
        if occupied > self.max_occupancy:
            self.max_occupancy = occupied
        yield self._messages.put((payload, nbytes, needed))

    def get(self):
        """Generator: read the next message; frees its slots immediately
        (the consumer copies data out before releasing in reality — the copy
        cost is charged by the caller, so ordering is equivalent).

        Returns ``(payload, nbytes)``.
        """
        yield from self._wait_unstalled()
        payload, nbytes, needed = yield self._messages.get()
        yield self._free_slots.put(needed)
        return payload, nbytes

    def prune_cancelled(self) -> int:
        """Drop waiters orphaned by an interrupted producer/consumer."""
        return (self._messages.prune_cancelled()
                + self._free_slots.prune_cancelled())

    def discard_ready(self, predicate) -> int:
        """Synchronously drop ready messages matching ``predicate``.

        Frees their slots; preserves the order of surviving messages.
        Returns the number of messages discarded.  Used by the channel's
        abort path to flush responses of an abandoned conversation.
        """
        kept = deque()
        freed = 0
        discarded = 0
        for payload, nbytes, needed in self._messages.items:
            if predicate(payload):
                freed += needed
                discarded += 1
            else:
                kept.append((payload, nbytes, needed))
        self._messages.items = kept
        if freed:
            # Free-slot puts always fit (we only return what was taken).
            self._free_slots.put(freed)
        return discarded

    def __repr__(self) -> str:
        return (f"<SharedRing {self.name} {self.occupied_slots}/{self.slots} "
                f"slots x {self.slot_bytes}B>")
