"""VM live migration (paper Section 6, "Compatibility with VM Migration").

The paper's argument: images live on shared storage (NFS/iSCSI), so after a
migration the hypervisors just update their vRead hash tables.  This module
provides the mechanics: pre-copy the VM's RAM over the LAN, a short
stop-and-copy downtime, then re-home the VM's threads onto the destination
host's scheduler.  The disk image object is shared storage already, so it
moves by reference.

vRead integration: call
:meth:`repro.core.manager.VReadManager.rebind_datanode` after migrating a
datanode VM — local/remote entries and mounts are recomputed on every host.
"""

from __future__ import annotations

from repro.hostmodel.host import PhysicalHost
from repro.virt.vm import VirtualMachine

#: Default guest RAM to pre-copy (the paper's VMs have 2 GB).
DEFAULT_RAM_BYTES = 2 << 30

#: Fraction of RAM re-sent due to dirtying during pre-copy rounds.
DIRTY_RESEND_FACTOR = 0.15

#: Stop-and-copy downtime (final dirty set + device state + switchover).
DEFAULT_DOWNTIME_SECONDS = 0.03


def migrate_vm(vm: VirtualMachine, target_host: PhysicalHost, lan,
               ram_bytes: int = DEFAULT_RAM_BYTES,
               downtime_seconds: float = DEFAULT_DOWNTIME_SECONDS):
    """Generator: live-migrate ``vm`` to ``target_host``.

    Timing: RAM (plus dirty-page resend) crosses the LAN at NIC speed, then
    the VM pauses for ``downtime_seconds``.  Afterwards the VM's vCPU,
    vhost-net and qemu-io threads are fresh entities on the destination
    scheduler; in-flight references through ``vm.vcpu``/``vm.vhost`` resolve
    to the new threads on next use.

    Guest page-cache contents travel with the RAM; the *host* page cache of
    the source stays behind (cold on the destination), matching reality.
    """
    source_host = vm.host
    if target_host is source_host:
        raise ValueError(f"{vm.name} is already on {target_host.name}")
    total = int(ram_bytes * (1 + DIRTY_RESEND_FACTOR))
    yield from lan.transfer(source_host, target_host, total)
    yield vm.sim.timeout(downtime_seconds)

    source_host.vms.remove(vm)
    # Retire the source-side threads before re-homing: in-flight bursts on
    # the old Thread objects drain normally, but the source scheduler must
    # not keep roster entries for a VM it no longer runs (each migration
    # would otherwise leak three threads per hop).
    for thread in (vm.vcpu, vm.vhost, vm.qemu_io):
        source_host.scheduler.retire_thread(thread)
    vm.host = target_host
    target_host.vms.append(vm)
    vm.vcpu = target_host.scheduler.thread(f"{vm.name}.vcpu")
    vm.vhost = target_host.scheduler.thread(f"{vm.name}.vhost-net")
    vm.qemu_io = target_host.scheduler.thread(f"{vm.name}.qemu-io")
    return vm
