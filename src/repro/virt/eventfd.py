"""eventfd-style signalling between a guest and a host daemon.

An :class:`EventFd` is a counting semaphore: ``signal`` increments, ``wait``
blocks until the count is positive and decrements.  CPU costs of raising
and handling the event are charged by the callers (the vRead driver
translates host-side events into virtual interrupts for the guest; the
daemon reads its eventfd directly — paper Section 3.3).
"""

from __future__ import annotations

from repro.sim import Simulator, Store


class EventFd:
    """A counting event channel (like Linux eventfd in semaphore mode)."""

    def __init__(self, sim: Simulator, name: str = "eventfd"):
        self.sim = sim
        self.name = name
        self._tokens = Store(sim)
        self.signals = 0

    def signal(self) -> None:
        """Increment the counter, waking one waiter if any (non-blocking)."""
        self.signals += 1
        self._tokens.put(None)

    def wait(self):
        """Generator: block until signalled, consuming one count."""
        yield self._tokens.get()

    @property
    def pending(self) -> int:
        return len(self._tokens)

    def try_consume(self) -> bool:
        """Non-blocking wait: consume one pending count if available."""
        if not self.pending:
            return False
        self._tokens.try_get()
        return True

    def prune_cancelled(self) -> int:
        """Drop waiters orphaned by an interrupted process (they would
        otherwise swallow a future signal)."""
        return self._tokens.prune_cancelled()

    def __repr__(self) -> str:
        return f"<EventFd {self.name} pending={self.pending}>"
