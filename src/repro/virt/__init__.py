"""Virtualization layer: VMs, virtio-blk, ivshmem shared rings, eventfds.

A :class:`~repro.virt.vm.VirtualMachine` bundles the schedulable threads KVM
gives a guest — the vCPU thread, the vhost-net thread, and the qemu I/O
thread for virtio-blk — plus the guest kernel's page cache and filesystem
(carried by its :class:`~repro.storage.image.DiskImage`).

:mod:`repro.virt.ivshmem` and :mod:`repro.virt.eventfd` provide the
POSIX-SHM ring buffer and the eventfd signalling that vRead's guest<->host
channel is built on (paper Section 3.3).
"""

from repro.virt.eventfd import EventFd
from repro.virt.ivshmem import SharedRing
from repro.virt.migration import migrate_vm
from repro.virt.virtio_blk import VirtioBlk
from repro.virt.vm import VirtualMachine

__all__ = ["EventFd", "SharedRing", "VirtioBlk", "VirtualMachine",
           "migrate_vm"]
