"""Virtual machines: threads, guest kernel file I/O, guest page cache.

A VM owns three schedulable threads on its host (matching KVM):

* ``vcpu`` — runs the guest: applications, guest kernel, interrupt handlers.
* ``vhost-net`` — the host-side network I/O thread (see :mod:`repro.net.tcp`).
* ``qemu-io`` — the host-side virtio-blk I/O thread.

Guest file I/O goes through :meth:`VirtualMachine.read_file` /
:meth:`~VirtualMachine.write_file`, which model the guest kernel: syscall +
filesystem work on the vCPU, guest page cache consultation, virtio-blk for
misses, and the kernel-to-user copy whose accounting category the caller
chooses (``client-application`` for HDFS clients, ``others`` for daemons).
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple, Union

from repro.hostmodel.host import PhysicalHost
from repro.metrics.accounting import DISK_READ, OTHERS
from repro.storage.content import ByteSource
from repro.storage.filesystem import FileSystem, InodeRangeSource
from repro.storage.image import DiskImage
from repro.storage.pagecache import PageCache
from repro.virt.virtio_blk import VirtioBlk


class VirtualMachine:
    """A guest VM on a physical host (1 vCPU, 2 GB RAM in the paper)."""

    def __init__(self, host: PhysicalHost, name: str,
                 image: Optional[DiskImage] = None,
                 guest_cache_bytes: float = float("inf")):
        self.host = host
        self.name = name
        self.image = image if image is not None else DiskImage(f"{name}.img")
        self.vcpu = host.scheduler.thread(f"{name}.vcpu")
        self.vhost = host.scheduler.thread(f"{name}.vhost-net")
        self.qemu_io = host.scheduler.thread(f"{name}.qemu-io")
        self.guest_cache = PageCache(guest_cache_bytes,
                                     name=f"{name}.guest-cache")
        self.virtio_blk = VirtioBlk(self)
        host.vms.append(self)

    # ------------------------------------------------------------- shortcuts
    @property
    def guest_fs(self) -> FileSystem:
        return self.image.guest_fs

    @property
    def sim(self):
        return self.host.sim

    @property
    def costs(self):
        return self.host.costs

    def thread_names(self) -> Tuple[str, str, str]:
        return (self.vcpu.name, self.vhost.name, self.qemu_io.name)

    # ------------------------------------------------------------ guest I/O
    def read_file(self, path: str, offset: int = 0,
                  length: Optional[int] = None,
                  copy_category: str = OTHERS):
        """Generator: guest reads a byte range of a file on its virtual disk.

        Returns a lazy :class:`ByteSource` over the range.  Pays: syscall +
        block-layer issue on the vCPU (``disk read``), virtio-blk for any
        pages missing from the guest cache, and the kernel->user copy on the
        vCPU charged to ``copy_category``.
        """
        inode = self.guest_fs.lookup(path)
        if length is None:
            length = max(0, inode.size - offset)
        costs = self.costs
        yield from self.vcpu.run(costs.syscall_cycles, DISK_READ)
        if length == 0:
            return InodeRangeSource(inode, offset, 0)
        key = self.image.cache_key(inode)
        missing = self.guest_cache.missing_bytes(key, offset, length)
        if missing > 0:
            # Guest block layer issues the request; data crosses virtio.
            yield from self.vcpu.run(
                costs.guest_block_layer_cycles_per_byte * length, DISK_READ)
            yield from self.virtio_blk.read(key, offset, length)
            self.guest_cache.insert(key, offset, length)
        copy_cycles = costs.guest_user_copy_cycles_per_byte * length
        yield from self.vcpu.run(copy_cycles, copy_category)
        return InodeRangeSource(inode, offset, length)

    def write_file(self, path: str, content: Union[bytes, ByteSource],
                   copy_category: str = OTHERS, sync: bool = True):
        """Generator: append ``content`` to a file (created if missing).

        Pays: the user->kernel copy on the vCPU, then (``sync=True``)
        virtio-blk write-through to the image.  Returns the file's new size.
        """
        costs = self.costs
        nbytes = content.size if isinstance(content, ByteSource) else len(content)
        yield from self.vcpu.run(costs.syscall_cycles, OTHERS)
        copy_cycles = costs.guest_user_copy_cycles_per_byte * nbytes
        yield from self.vcpu.run(copy_cycles, copy_category)
        inode = self.guest_fs.append(path, content)
        start = inode.size - nbytes
        key = self.image.cache_key(inode)
        self.guest_cache.insert(key, start, nbytes)
        if sync and nbytes > 0:
            yield from self.virtio_blk.write(key, start, nbytes)
        return inode.size

    def delete_file(self, path: str):
        """Generator: unlink a file (namespace change bumps fs generation)."""
        yield from self.vcpu.run(self.costs.syscall_cycles, OTHERS)
        self.guest_fs.unlink(path)

    def rename_file(self, old: str, new: str):
        """Generator: rename within the guest filesystem."""
        yield from self.vcpu.run(self.costs.syscall_cycles, OTHERS)
        self.guest_fs.rename(old, new)

    # ---------------------------------------------------------------- caches
    def drop_guest_cache(self) -> None:
        """Clear the guest kernel's disk buffer (paper's cold-read prep)."""
        self.guest_cache.drop()

    def __repr__(self) -> str:
        return f"<VirtualMachine {self.name} on {self.host.name}>"
