"""virtio-blk: the paravirtual block device between a guest and its image.

Each request the guest submits crosses the protection boundary to the qemu
I/O thread (vhost-blk is disabled on the paper's testbed, matching KVM of
that era): the I/O thread pays a fixed per-request cost, faults any pages
missing from the **host** page cache in from the SSD, then copies the data
through the virtqueue into guest memory — the first of the vanilla path's
five copies.  Completion raises a virtual interrupt on the guest vCPU.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.hostmodel.costs import CostModel
from repro.metrics.accounting import COPY_VIRTIO, OTHERS


class VirtioBlk:
    """The virtio block device of one VM."""

    def __init__(self, vm):
        self.vm = vm
        self.requests = 0
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def _costs(self) -> CostModel:
        return self.vm.host.costs

    def read(self, cache_key: Hashable, offset: int, length: int):
        """Generator: guest reads ``length`` bytes of the object ``cache_key``
        from its virtual disk into guest memory.

        ``cache_key`` identifies the image region in the *host* page cache
        (image name + inode), so data previously read by anyone on this host
        — including the vRead daemon — is already warm.
        """
        if length <= 0:
            return
        host = self.vm.host
        costs = self._costs
        # Virtqueue kick + request handling on the qemu I/O thread.
        yield from self.vm.qemu_io.run(
            costs.virtio_blk_request_cycles, COPY_VIRTIO)
        missing = host.page_cache.missing_bytes(cache_key, offset, length)
        if missing > 0:
            yield from host.storage.read(missing, offset=offset)
            host.page_cache.insert(cache_key, offset, length)
        # Copy host page cache -> guest memory through the virtqueue.
        yield from self.vm.qemu_io.run(
            costs.virtio_blk_copy_cycles_per_byte * length, COPY_VIRTIO)
        # Completion interrupt into the guest.
        yield from self.vm.vcpu.run(costs.virq_cycles, OTHERS)
        self.requests += 1
        self.bytes_read += length

    def write(self, cache_key: Hashable, offset: int, length: int):
        """Generator: guest writes ``length`` bytes through to the image.

        Write-through for simplicity: the data lands in the host page cache
        and on the SSD before completion (the paper's write experiments are
        sequential streaming writes, where writeback reaches steady state at
        device bandwidth anyway).
        """
        if length <= 0:
            return
        host = self.vm.host
        costs = self._costs
        yield from self.vm.qemu_io.run(
            costs.virtio_blk_request_cycles, COPY_VIRTIO)
        yield from self.vm.qemu_io.run(
            costs.virtio_blk_copy_cycles_per_byte * length, COPY_VIRTIO)
        yield from host.storage.write(length, offset=offset)
        host.page_cache.insert(cache_key, offset, length)
        yield from self.vm.vcpu.run(costs.virq_cycles, OTHERS)
        self.requests += 1
        self.bytes_written += length
