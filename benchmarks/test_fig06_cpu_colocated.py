"""Figure 6 bench: CPU-utilization breakdown, co-located read.

Shape checks (paper: ~40% client-side and ~65% datanode-side CPU saving):
vRead saves a large fraction on both sides; the vanilla datanode burns CPU
in virtio copies and vhost-net, which vanish entirely with vRead.
"""

from repro.experiments.cpu_breakdowns import run_fig06
from repro.metrics.accounting import COPY_VIRTIO, COPY_VREAD_BUFFER, VHOST_NET

FILE_BYTES = 32 << 20


def test_fig06_cpu_colocated(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_fig06(file_bytes=FILE_BYTES), rounds=1, iterations=1)
    report(result.render()
           + f"\n  client CPU saving: {result.client_saving_pct():.1f}% "
             f"(paper ~40%)"
           + f"\n  datanode-side saving: {result.serving_saving_pct():.1f}% "
             f"(paper ~65%)")
    assert 20.0 < result.client_saving_pct() < 75.0
    assert 35.0 < result.serving_saving_pct() < 85.0
    # The vanilla datanode side pays virtio copies + vhost-net; vRead's
    # daemon pays neither (no virtual devices on its path).
    vanilla_dn = result.serving.bars["vanilla-datanode"]
    vread_daemon = result.serving.bars["vRead-daemon"]
    assert vanilla_dn.get(COPY_VIRTIO) > 0
    assert vanilla_dn.get(VHOST_NET) > 0
    assert vread_daemon.get(COPY_VIRTIO) == 0
    assert vread_daemon.get(VHOST_NET) == 0
    assert vread_daemon.get(COPY_VREAD_BUFFER) > 0
    # Co-located vRead involves no virtual network on the client either.
    assert result.client.bars["vRead"].get(VHOST_NET) == 0
