"""Ablation bench: host page-cache size vs vRead re-read performance.

Shape checks: with the cache bounded below the working set, re-reads decay
to cold-read speed; at or above the working set they fly.
"""

from repro.experiments import ablation_cache_size

FILE_BYTES = 32 << 20


def test_ablation_cache_size(benchmark, report):
    result = benchmark.pedantic(
        lambda: ablation_cache_size.run(file_bytes=FILE_BYTES),
        rounds=1, iterations=1)
    report(result.render())
    small = result.cells[4 << 20]           # cache << working set
    large = result.cells[64 << 20]          # cache >= working set
    unbounded = result.cells[float("inf")]
    assert large > small * 2, "the cache cliff must be visible"
    assert unbounded == large               # beyond the working set: no gain
