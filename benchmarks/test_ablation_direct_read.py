"""Ablation bench (paper §6): mounted host FS vs direct-read bypass.

Shape checks: bypass mode needs no mount refreshes and roughly ties on
cold reads, but forfeits the host page cache — re-reads collapse to
cold-read speed.  This is the paper's argument for the mount-based design.
"""

from repro.experiments import ablation_direct_read

FILE_BYTES = 32 << 20


def test_ablation_direct_read(benchmark, report):
    result = benchmark.pedantic(
        lambda: ablation_direct_read.run(file_bytes=FILE_BYTES),
        rounds=1, iterations=1)
    report(result.render()
           + f"\n  bypass re-read penalty: {result.warm_penalty_pct:.0f}%")
    mounted_cold, mounted_warm, mounted_refreshes = \
        result.modes["mounted host FS"]
    bypass_cold, bypass_warm, bypass_refreshes = \
        result.modes["bypass host FS"]
    # Cold reads roughly tie (within 20%).
    assert abs(mounted_cold - bypass_cold) / mounted_cold < 0.20
    # The mount-based design wins re-reads decisively via the host cache.
    assert mounted_warm > bypass_warm * 2
    # Bypass mode genuinely avoids all mount refreshes.
    assert bypass_refreshes == 0
    assert mounted_refreshes > 0
    # Bypass re-reads hit the SSD every time: no faster than cold.
    assert bypass_warm <= bypass_cold * 1.1
