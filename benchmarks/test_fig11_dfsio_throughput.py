"""Figure 11 bench: TestDFSIO read/re-read throughput, all six panels.

Shape checks from the paper's text:
* vRead beats vanilla in every panel/frequency/VM-count cell;
* co-located read improvement grows as the CPU slows (~20% @3.2GHz ->
  ~41% @1.6GHz): the vanilla path is CPU-bound, vRead isn't;
* 4 background-loaded VMs depress vanilla throughput (up to ~22%) much
  more than vRead's;
* re-read improvements are far larger than cold-read improvements
  (up to 150% in the paper).
"""

from repro.experiments import fig11_dfsio_throughput as fig11

FILE_BYTES = 32 << 20


def test_fig11_dfsio_throughput(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig11.run(file_bytes=FILE_BYTES), rounds=1, iterations=1)
    lines = [result.render(), ""]
    lines.append(f"  co-located read improvement @3.2GHz 2vms: "
                 f"{result.improvement_pct('colocated', 'read', '3.2GHz', 2):.1f}%"
                 f" (paper ~20%)")
    lines.append(f"  co-located read improvement @1.6GHz 2vms: "
                 f"{result.improvement_pct('colocated', 'read', '1.6GHz', 2):.1f}%"
                 f" (paper ~41%)")
    report("\n".join(lines))

    # vRead wins every cell.
    for (scenario, phase), panel in result.panels.items():
        for freq in panel.x_values:
            for vms in (2, 4):
                vanilla = panel.value(f"vanilla-{vms}vms", freq)
                vread = panel.value(f"vRead-{vms}vms", freq)
                assert vread > vanilla, (
                    f"{scenario}/{phase}/{freq}/{vms}vms: vRead must win")

    # Improvement grows as the CPU slows (co-located cold read).
    slow = result.improvement_pct("colocated", "read", "1.6GHz", 2)
    fast = result.improvement_pct("colocated", "read", "3.2GHz", 2)
    assert slow > fast
    assert 10.0 < fast < 45.0     # paper ~20%
    assert 25.0 < slow < 60.0     # paper ~41%

    # Background VMs depress vanilla throughput noticeably.
    panel = result.panels[("colocated", "read")]
    for freq in panel.x_values:
        drop = (1 - panel.value("vanilla-4vms", freq)
                / panel.value("vanilla-2vms", freq)) * 100.0
        assert drop > 2.0, f"{freq}: expected a 4vms drop, got {drop:.1f}%"

    # Re-read gains dwarf cold-read gains.
    reread = result.improvement_pct("colocated", "reread", "2.0GHz", 2)
    cold = result.improvement_pct("colocated", "read", "2.0GHz", 2)
    assert reread > cold * 1.5
    assert reread > 50.0          # paper: up to 150%
