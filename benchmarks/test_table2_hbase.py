"""Table 2 bench: HBase scan / sequential read / random read.

Shape checks (paper: +27.3% / +23.6% / +17.3%): every operation improves
with vRead, and the random-read improvement is the smallest (most diluted
by per-get region-server work).
"""

from repro.experiments import table2_hbase


def test_table2_hbase(benchmark, report):
    result = benchmark.pedantic(table2_hbase.run, rounds=1, iterations=1)
    report(result.render())
    for operation in table2_hbase.OPERATIONS:
        improvement = result.improvement_pct(operation)
        assert improvement > 5.0, f"{operation}: no meaningful improvement"
        assert improvement < 60.0, f"{operation}: improvement implausibly large"
    # Random reads benefit least (paper's ordering: scan > seq > random).
    assert (result.improvement_pct("random-read")
            < result.improvement_pct("scan"))
    assert (result.improvement_pct("random-read")
            < result.improvement_pct("sequential-read"))
    # Scan moves data in bulk: much higher absolute MB/s than per-row gets.
    assert result.rows["scan"][0] > result.rows["sequential-read"][0] * 5
