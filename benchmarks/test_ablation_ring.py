"""Ablation bench: vRead ring geometry / response chunking.

Shape checks: mid-sized chunks beat both extremes — tiny chunks pay
per-doorbell costs, a chunk spanning the whole ring kills daemon/guest
pipelining.
"""

from repro.experiments import ablation_ring

FILE_BYTES = 32 << 20


def test_ablation_ring(benchmark, report):
    result = benchmark.pedantic(
        lambda: ablation_ring.run(file_bytes=FILE_BYTES),
        rounds=1, iterations=1)
    (slots, chunk), best_mbps = result.best()
    report(result.render()
           + f"\n  best: {slots} slots x {chunk >> 10}KB = {best_mbps:.0f} MB/s")
    # 64KB chunks lose to 256KB chunks (per-doorbell overheads).
    assert result.cells[(1024, 256 * 1024)] > result.cells[(1024, 64 * 1024)]
    # A chunk as large as the whole ring serializes daemon and guest:
    # with 1024 x 4KiB slots, a 4MB chunk fills the ring completely.
    assert result.cells[(1024, 4 << 20)] < result.cells[(1024, 256 * 1024)]
    # Everything still functions (no zero cells).
    assert all(mbps > 0 for mbps in result.cells.values())
