"""Sensitivity bench: the headline result must be calibration-robust.

Shape checks: halving or doubling any single cost constant never flips the
sign of vRead's improvement — the win is structural (fewer copies, fewer
thread handoffs), not an artifact of one lucky constant.
"""

from repro.experiments import sensitivity


def test_sensitivity(benchmark, report):
    result = benchmark.pedantic(
        lambda: sensitivity.run(file_bytes=8 << 20), rounds=1, iterations=1)
    most = max(sensitivity.DEFAULT_KNOBS, key=result.spread)
    report(result.render()
           + f"\n  always positive: {result.always_positive()}"
           + f"\n  most sensitive: {most}")
    assert result.always_positive()
    # Making vRead's own copies costlier must *shrink* its advantage...
    cheap = result.cells[("vread_copy_cycles_per_byte", 0.5)][0]
    costly = result.cells[("vread_copy_cycles_per_byte", 2.0)][0]
    assert cheap > costly
    # ...and making the vanilla path costlier must *grow* it.
    light = result.cells[("hdfs_checksum_cycles_per_byte", 0.5)][0]
    heavy = result.cells[("hdfs_checksum_cycles_per_byte", 2.0)][0]
    assert heavy > light
