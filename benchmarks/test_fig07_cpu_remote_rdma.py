"""Figure 7 bench: CPU breakdown, remote read with RDMA daemons.

Shape checks (paper: ~45% client / >50% datanode-side saving): the RDMA
cost is far below vanilla's vhost-net, and the active-push model puts more
of it on the datanode side than the client side.
"""

from repro.experiments.cpu_breakdowns import run_fig07
from repro.metrics.accounting import RDMA, VHOST_NET

FILE_BYTES = 32 << 20


def test_fig07_cpu_remote_rdma(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_fig07(file_bytes=FILE_BYTES), rounds=1, iterations=1)
    report(result.render()
           + f"\n  client CPU saving: {result.client_saving_pct():.1f}% "
             f"(paper ~45%)"
           + f"\n  datanode-side saving: {result.serving_saving_pct():.1f}% "
             f"(paper >50%)")
    assert 20.0 < result.client_saving_pct() < 80.0
    # Paper says "more than 50%"; our daemon model is leaner than the
    # prototype, so the saving lands high in the range.
    assert 50.0 < result.serving_saving_pct() < 97.0
    # RDMA's CPU cost is far below the vhost-net cost it replaces.
    vanilla_client = result.client.bars["vanilla"]
    vread_serving = result.serving.bars["vRead-daemon"]
    assert vread_serving.get(RDMA) < vanilla_client.get(VHOST_NET) / 3
    # Active push: the datanode side carries the rdma cost.
    client_rdma = result.client.bars["vRead"].get(RDMA)
    assert vread_serving.get(RDMA) >= client_rdma
