"""Figure 2 bench: HDFS-in-VM read delay vs local read delay.

Shape checks: inter-VM reads are slower than local reads at every request
size, and warm re-reads widen the gap (the extra copies remain when the
disk time is gone).
"""

from repro.experiments import fig02_motivation_delay as fig02

FILE_BYTES = 8 << 20


def test_fig02_motivation_delay(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig02.run(file_bytes=FILE_BYTES), rounds=1, iterations=1)
    report(result.render())
    for figure in (result.no_cache, result.cache):
        for i, _ in enumerate(figure.x_values):
            inter_vm = figure.series["inter-VM"][i]
            local = figure.series["local"][i]
            assert inter_vm > local, (
                f"{figure.figure} {figure.x_values[i]}: inter-VM read must "
                f"be slower than local ({inter_vm:.3f} vs {local:.3f} ms)")
    # Delay grows with request size within each series.
    assert result.no_cache.series["inter-VM"] == sorted(
        result.no_cache.series["inter-VM"])
    # Cached inter-VM reads are still far slower than cached local reads
    # (>= 3x: the copies dominate once the disk is out of the picture).
    ratio = (result.cache.series["inter-VM"][1]
             / result.cache.series["local"][1])
    assert ratio > 3.0
