"""Ablation bench: RDMA vs TCP remote-read transports (paper footnote 2).

Shape checks: RDMA gives at least equal throughput at a fraction of the
daemon CPU; the TCP fallback works but overpays in cycles.
"""

from repro.experiments import ablation_transport

FILE_BYTES = 32 << 20


def test_ablation_transport(benchmark, report):
    result = benchmark.pedantic(
        lambda: ablation_transport.run(file_bytes=FILE_BYTES),
        rounds=1, iterations=1)
    report(result.render()
           + f"\n  TCP/RDMA daemon CPU ratio: {result.cpu_ratio:.1f}x")
    rdma_cold, rdma_warm, rdma_cpu = result.transports["rdma"]
    tcp_cold, tcp_warm, tcp_cpu = result.transports["tcp"]
    assert rdma_cold >= tcp_cold
    assert rdma_warm >= tcp_warm
    # "it consumes more CPU cycles for remote reads" — footnote 2.
    assert result.cpu_ratio > 1.5
