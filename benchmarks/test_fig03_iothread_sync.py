"""Figure 3 bench: netperf TCP_RR rate under I/O-thread contention.

Shape checks: the 4-VM (2 x lookbusy-85%) rate is below the 2-VM rate at
every request size, with a drop in the paper's ballpark (~20%), and rates
decrease with request size.
"""

from repro.experiments import fig03_iothread_sync as fig03


def test_fig03_iothread_sync(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig03.run(duration=0.25), rounds=1, iterations=1)
    report(result.render())
    drops = []
    for i, size in enumerate(result.x_values):
        two = result.series["2vms"][i]
        four = result.series["4vms"][i]
        assert four < two, f"{size}: no contention drop ({four} >= {two})"
        drops.append((two - four) / two * 100.0)
    # Paper reports ~20%; accept a 5%..50% band for the shape.
    assert max(drops) > 5.0
    assert max(drops) < 50.0
    # Larger requests -> fewer transactions/second.
    assert result.series["2vms"] == sorted(result.series["2vms"],
                                           reverse=True)
