"""Table 3 bench: Hive range query and Sqoop export.

Shape checks (paper: -21.3% and -11.3% completion time): both workloads
get faster with vRead, and the Sqoop improvement is smaller than Hive's
because the MySQL insert side — which vRead cannot optimize — bounds it.
"""

from repro.experiments import table3_hive_sqoop


def test_table3_hive_sqoop(benchmark, report):
    result = benchmark.pedantic(table3_hive_sqoop.run, rounds=1, iterations=1)
    report(result.render())
    assert result.hive_reduction_pct > 8.0
    assert result.hive_reduction_pct < 35.0     # paper: 21.3%
    assert result.sqoop_reduction_pct > 3.0
    assert result.sqoop_reduction_pct < 20.0    # paper: 11.3%
    # The write-side bottleneck caps Sqoop below Hive.
    assert result.sqoop_reduction_pct < result.hive_reduction_pct
    # Sanity: vRead is never slower.
    assert result.hive_select[1] < result.hive_select[0]
    assert result.sqoop_export[1] < result.sqoop_export[0]
