"""Figure 13 bench: HDFS write throughput with vRead installed.

Shape check: the mount-refresh work triggered per committed block
(vRead_update) costs the writer essentially nothing — within 5% of vanilla
in every scenario (the paper calls it negligible).
"""

from repro.experiments import fig13_write_throughput as fig13

FILE_BYTES = 32 << 20


def test_fig13_write_throughput(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig13.run(file_bytes=FILE_BYTES), rounds=1, iterations=1)
    lines = [result.render()]
    for i, scenario in enumerate(result.x_values):
        vanilla = result.series["vanilla"][i]
        vread = result.series["vRead"][i]
        overhead = (vanilla - vread) / vanilla * 100.0
        lines.append(f"  {scenario}: vRead write overhead = {overhead:+.2f}%")
        assert abs(overhead) < 5.0, (
            f"{scenario}: write overhead {overhead:.2f}% is not negligible")
        assert vanilla > 0 and vread > 0
    report("\n".join(lines))
