"""PR 8 performance harness: tiered storage devices + the stream layer.

Measures, each phase in a fresh subprocess (clean RSS high-water mark):

* **Device-class determinism** — the ``ablation-storage-tiers`` sweep at
  ``--jobs 1`` vs ``--jobs 4`` (canonical JSON must be byte-identical),
  plus a repeated mixed-tier cluster run whose stream-layer digest must
  reproduce exactly.
* **Tier ordering** — cold-read throughput must rank hdd < ssd < nvme
  in both modes, and the vRead cold-read gain must *grow* with media
  speed (the CPU-vs-device crossover the ablation exists to show).
* **Stream-append RSS flatness** — appending 10^4 vs 10^6 virtual
  records to a ``retain=False`` stream layer: peak RSS of the large run
  must stay below 1.2x the small run's, because only lengths and
  rolling digests are kept.
* **Stream-append throughput** — virtual appends/second through the
  block-mapping path every simulated write pays.

Writes BENCH_pr8.json (see docs/performance.md) and exits non-zero if
any gate fails — CI runs this with ``--quick``.

Wall-clock use is deliberate and allowed here: this file measures the
*host* runtime of the harness, it is not simulation code (simlint scans
``src/repro`` only).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import resource
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..",
                                "src"))

RSS_FLATNESS_LIMIT = 1.2


def _measure_in_child(target, kwargs, conn):
    started = time.monotonic()
    payload = target(**kwargs)
    elapsed = time.monotonic() - started
    max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    conn.send({"wall_s": round(elapsed, 3), "max_rss_mb":
               round(max_rss_kb / 1024, 1), "payload": payload})
    conn.close()


def measure(target, **kwargs):
    """Run ``target(**kwargs)`` in a fresh process; return timing + result.

    A subprocess per measurement keeps one phase's RSS high-water mark
    from contaminating the next — essential for the flatness gate.
    """
    parent, child = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(target=_measure_in_child,
                                   args=(target, kwargs, child))
    proc.start()
    child.close()
    result = parent.recv()
    proc.join()
    if proc.exitcode != 0:
        raise RuntimeError(f"benchmark child failed: {target.__name__}")
    return result


# ----------------------------------------------------------- child workloads
def _tiers_sweep_json(jobs, file_bytes):
    from repro.experiments import runner

    result = runner.run_experiment("ablation-storage-tiers", jobs=jobs,
                                   seed=0, params={"file_bytes": file_bytes})
    return {"json": runner.canonical_json(result), "series": result.series}


def _mixed_cluster_digest(file_bytes):
    """Write hot + cold datasets on a mixed-tier cluster; digest streams."""
    from repro.cluster import VirtualHadoopCluster, rack_cluster
    from repro.storage.content import PatternSource

    topology = rack_cluster(n_racks=2, hosts_per_rack=1,
                            storage=("hdd", "nvme"))
    cluster = VirtualHadoopCluster(topology=topology,
                                   block_size=max(file_bytes // 2, 1 << 20))

    def load():
        yield from cluster.write_dataset(
            "/bench/cold", PatternSource(file_bytes, seed=90))
        yield from cluster.write_dataset(
            "/bench/hot", PatternSource(file_bytes, seed=91), hot=True)

    cluster.run(cluster.sim.process(load()))
    hot_block = cluster.namenode.get_blocks("/bench/hot")[0]
    return {"digest": cluster.stream_layer.digest(),
            "mapped_blocks": cluster.stream_layer.mapped_blocks,
            "hot_first_location": hot_block.locations[0],
            "now": cluster.sim.now}


def _stream_append_run(records):
    """``records`` virtual appends into a retain=False stream layer.

    4 KB records keep the extent count tiny (~60 extents at 10^6
    records), so the flatness gate isolates *per-record* state — the
    claim under test.  Per-extent metadata is O(bytes / extent size) by
    design and would dominate with block-sized records.
    """
    from repro.storage.stream import StreamLayer

    layer = StreamLayer(["dn1", "dn2", "dn3"], replication=2,
                        extent_bytes=64 << 20)
    started = time.monotonic()
    for index in range(records):
        layer.get_or_create(f"/f{index % 16}").append_virtual(
            4 << 10, fingerprint=index.to_bytes(8, "big"))
    elapsed = time.monotonic() - started
    return {"records": records, "wall_s": round(elapsed, 3),
            "appends_per_s": round(records / elapsed),
            "digest": layer.digest()}


# ------------------------------------------------------------------- phases
def phase_determinism(report, failures, quick):
    file_bytes = (2 if quick else 8) << 20
    serial = measure(_tiers_sweep_json, jobs=1, file_bytes=file_bytes)
    parallel = measure(_tiers_sweep_json, jobs=2 if quick else 4,
                       file_bytes=file_bytes)
    identical = serial["payload"]["json"] == parallel["payload"]["json"]
    report["tiers_sweep_jobs"] = {
        "byte_identical": identical,
        "wall_serial_s": serial["wall_s"],
        "wall_parallel_s": parallel["wall_s"],
        "json_bytes": len(serial["payload"]["json"]),
    }
    if not identical:
        failures.append(
            "ablation-storage-tiers --jobs N diverged from the serial run")

    repeat = measure(_mixed_cluster_digest, file_bytes=file_bytes)
    again = measure(_mixed_cluster_digest, file_bytes=file_bytes)
    same = repeat["payload"] == again["payload"]
    report["mixed_cluster_digest"] = {
        "repeat_identical": same,
        "mapped_blocks": repeat["payload"]["mapped_blocks"],
        "hot_first_location": repeat["payload"]["hot_first_location"],
    }
    if not same:
        failures.append("mixed-tier cluster run not reproducible "
                        "(stream digest or timeline drifted)")
    if repeat["payload"]["hot_first_location"] != "dn2":
        failures.append(
            "hot dataset's first replica missed the fast tier: "
            f"{repeat['payload']['hot_first_location']!r} (expected 'dn2')")
    print(f"  determinism: tiers-sweep jobs byte-identical={identical}, "
          f"mixed-cluster repeat={same}")

    series = serial["payload"]["series"]
    ordered = all(series[f"{mode} cold"][0] < series[f"{mode} cold"][1]
                  < series[f"{mode} cold"][2]
                  for mode in ("vanilla", "vRead"))
    gains = [series["vRead cold"][i] / series["vanilla cold"][i]
             for i in range(3)]
    crossover = gains[0] < gains[-1]
    report["tier_ordering"] = {
        "cold_ranks_hdd_ssd_nvme": ordered,
        "vread_gain_by_tier": [round(g, 3) for g in gains],
        "gain_grows_with_media_speed": crossover,
    }
    if not ordered:
        failures.append("cold-read throughput does not rank hdd < ssd < nvme")
    if not crossover:
        failures.append(
            f"vRead cold-read gain should grow with media speed, got "
            f"{gains} (hdd -> nvme)")
    print(f"  tier ordering: ranks ok={ordered}, vRead gain hdd->nvme "
          f"{gains[0]:.2f}x -> {gains[-1]:.2f}x")


def phase_rss_flatness(report, failures):
    small = measure(_stream_append_run, records=10_000)
    large = measure(_stream_append_run, records=1_000_000)
    ratio = large["max_rss_mb"] / small["max_rss_mb"]
    report["stream_rss_flatness"] = {
        "rss_small_mb": small["max_rss_mb"],
        "rss_large_mb": large["max_rss_mb"],
        "rss_ratio": round(ratio, 3),
        "limit": RSS_FLATNESS_LIMIT,
        "wall_small_s": small["wall_s"],
        "wall_large_s": large["wall_s"],
    }
    if ratio >= RSS_FLATNESS_LIMIT:
        failures.append(
            f"stream-append RSS not flat: 1e6-record run used {ratio:.2f}x "
            f"the memory of the 1e4-record run (limit "
            f"{RSS_FLATNESS_LIMIT}x)")
    print(f"  rss: 1e4 records {small['max_rss_mb']}MB, 1e6 records "
          f"{large['max_rss_mb']}MB (ratio {ratio:.2f}, "
          f"limit {RSS_FLATNESS_LIMIT})")


def phase_throughput(report, quick):
    records = 200_000 if quick else 1_000_000
    result = measure(_stream_append_run, records=records)
    report["stream_append_throughput"] = {
        "records": result["payload"]["records"],
        "wall_s": result["payload"]["wall_s"],
        "appends_per_s": result["payload"]["appends_per_s"],
    }
    print(f"  stream appends: "
          f"{result['payload']['appends_per_s']:,} records/s")


# --------------------------------------------------------------------- main
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller determinism/throughput phases (CI)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report to PATH")
    args = parser.parse_args(argv)

    report = {
        "bench": "pr8-tiered-storage",
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    failures = []
    print("Determinism gates (device tiers, stream digests):")
    phase_determinism(report, failures, args.quick)
    print("RSS flatness (retain=False stream appends):")
    phase_rss_flatness(report, failures)
    print("Stream-append throughput:")
    phase_throughput(report, args.quick)

    report["failures"] = failures
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
