"""PR 3 performance harness: wall-clock + peak RSS for the fast paths.

Measures three workloads, each in a fresh subprocess (clean caches, clean
RSS high-water mark):

* the Fig 11 TestDFSIO sweep through the parallel runner at ``--jobs 1``
  vs ``--jobs 4`` (plus a byte-identity check between the two);
* the chaos scenario (seeded fault storms) at ``--jobs 1`` vs ``--jobs 4``
  (same byte-identity check);
* the multi-rack scale-out sweep (``scale-racks``) at ``--jobs 1`` vs
  ``--jobs 4`` (same byte-identity check);
* a 64-client scale run and a single 64 MB verified block read, each in
  the legacy bytes plane vs the zero-copy buffer plane
  (``REPRO_LEGACY_BUFFERS`` toggle).

Writes the results as JSON (see docs/performance.md for the format) and
exits non-zero if any parallel run diverges from its serial twin — CI runs
this with ``--quick`` as the determinism gate.

Wall-clock use is deliberate and allowed here: this file measures the
*host* runtime of the simulator, it is not simulation code (simlint scans
``src/repro`` only).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import resource
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..",
                                "src"))


def _measure_in_child(target, kwargs, conn):
    started = time.monotonic()
    payload = target(**kwargs)
    elapsed = time.monotonic() - started
    max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    conn.send({"wall_s": round(elapsed, 3), "max_rss_mb":
               round(max_rss_kb / 1024, 1), "payload": payload})
    conn.close()


def measure(target, **kwargs):
    """Run ``target(**kwargs)`` in a fresh process; return timing + result.

    A subprocess per measurement keeps the checksum memos, sweep caches and
    RSS high-water mark of one phase from contaminating the next.
    """
    parent, child = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(target=_measure_in_child,
                                   args=(target, kwargs, child))
    proc.start()
    child.close()
    result = parent.recv()
    proc.join()
    if proc.exitcode != 0:
        raise RuntimeError(f"benchmark child failed: {target.__name__}")
    return result


# ----------------------------------------------------------- child workloads
def _run_sweep(name, profile, jobs):
    from repro.experiments import runner
    result = runner.run_experiment(name, profile=profile, jobs=jobs, seed=0)
    return runner.canonical_json(result)


def _run_block_read(file_bytes, legacy):
    from repro.cluster import VirtualHadoopCluster
    from repro.storage.content import PatternSource, use_legacy_buffers

    use_legacy_buffers(legacy)
    payload = PatternSource(file_bytes, seed=42)
    # One whole HDFS block: the zero-copy plane serves it as a single
    # source view, so the verify step can reuse the writer's block digest.
    cluster = VirtualHadoopCluster(vread=True, block_size=file_bytes)

    def load():
        yield from cluster.write_dataset("/bench", payload, favored=["dn1"])

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    cluster.drop_all_caches()

    def read():
        source = yield from cluster.clients.get().read_file("/bench")
        return source

    source = cluster.run(cluster.sim.process(read()))
    assert source.checksum() == payload.checksum()
    return {"simulated_ms": round(cluster.sim.now * 1e3, 3)}


def _run_scale(n_clients, file_bytes, legacy):
    from repro.experiments.scale_clients import _measure
    from repro.storage.content import use_legacy_buffers

    use_legacy_buffers(legacy)
    aggregate = _measure(True, n_clients, file_bytes)
    return {"aggregate_mbps": round(aggregate, 1)}


#: Wall-clock gates: {speedup key: floor}.  Comfortably below the values
#: measured on the reference host, so jitter never trips them but a
#: silently-disabled fast path does.  The jobs4 rows are deliberately
#: ungated: process fan-out wins depend on idle cores, which CI rarely
#: has — their determinism check is the contract.
SPEEDUP_FLOORS = {
    "block_read_fast_vs_legacy": 1.3,
}


def gate_speedups(out, failures, quick):
    """Wall-clock gates: assert on full-size multi-core runs, otherwise
    record the measurement as skipped with an explicit note in the JSON.
    Determinism gates ran regardless."""
    multi_core = (out["host"]["cpu_count"] or 1) > 1
    if not multi_core:
        skip_note = ("single-core host: wall-clock speedups are not "
                     "meaningful here; determinism gates still ran")
    elif quick:
        skip_note = ("quick profile: datasets are startup-dominated, so "
                     "wall-clock floors only assert on full-size runs; "
                     "determinism gates still ran")
    else:
        skip_note = None
    out["speedup_gates"] = {}
    for key, floor in SPEEDUP_FLOORS.items():
        measured = out["speedups"].get(key)
        if skip_note is not None:
            out["speedup_gates"][key] = {"floor": floor,
                                         "measured": measured,
                                         "skipped": skip_note}
            continue
        passed = measured is not None and measured >= floor
        out["speedup_gates"][key] = {"floor": floor, "measured": measured,
                                     "passed": passed}
        if not passed:
            failures.append(f"speedup gate {key}: {measured} < {floor}")


# ------------------------------------------------------------------ phases
def bench_sweep(name, profile, out, failures):
    serial = measure(_run_sweep, name=name, profile=profile, jobs=1)
    fanned = measure(_run_sweep, name=name, profile=profile, jobs=4)
    identical = serial.pop("payload") == fanned.pop("payload")
    out["benchmarks"][f"{name}_jobs1"] = serial
    out["benchmarks"][f"{name}_jobs4"] = fanned
    out["determinism"][name] = identical
    out["speedups"][f"{name}_jobs4_vs_jobs1"] = round(
        serial["wall_s"] / fanned["wall_s"], 2)
    if not identical:
        failures.append(f"{name}: --jobs 4 diverged from --jobs 1")
    print(f"  {name:12s} jobs1 {serial['wall_s']:6.2f}s   "
          f"jobs4 {fanned['wall_s']:6.2f}s   "
          f"identical={identical}")


def bench_plane(label, target, out, speedup_key, **kwargs):
    legacy = measure(target, legacy=True, **kwargs)
    fast = measure(target, legacy=False, **kwargs)
    assert legacy.pop("payload") == fast.pop("payload"), \
        f"{label}: legacy and zero-copy planes disagree on simulated results"
    out["benchmarks"][f"{label}_legacy"] = legacy
    out["benchmarks"][f"{label}_fast"] = fast
    out["speedups"][speedup_key] = round(
        legacy["wall_s"] / fast["wall_s"], 2)
    print(f"  {label:12s} legacy {legacy['wall_s']:6.2f}s   "
          f"fast {fast['wall_s']:6.2f}s   "
          f"{out['speedups'][speedup_key]:.2f}x")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized datasets (minutes -> seconds)")
    parser.add_argument("--out", default="BENCH_pr3.json",
                        help="output JSON path (default: BENCH_pr3.json)")
    args = parser.parse_args(argv)

    profile = "quick" if args.quick else "default"
    block_bytes = (16 << 20) if args.quick else (64 << 20)
    scale_bytes = (1 << 20) if args.quick else (4 << 20)

    out = {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "profile": profile,
        "benchmarks": {},
        "determinism": {},
        "speedups": {},
        "notes": [],
    }
    failures = []

    print(f"parallel fan-out (profile={profile}):")
    bench_sweep("fig11", profile, out, failures)
    bench_sweep("chaos-sweep", profile, out, failures)
    bench_sweep("scale-racks", profile, out, failures)

    print("zero-copy data plane:")
    bench_plane("block_read", _run_block_read, out,
                "block_read_fast_vs_legacy", file_bytes=block_bytes)
    bench_plane("scale64", _run_scale, out, "scale64_fast_vs_legacy",
                n_clients=64, file_bytes=scale_bytes)

    gate_speedups(out, failures, args.quick)
    out["notes"].append(
        f"block_read = one cold {block_bytes >> 20}MB verified read; "
        f"scale64 = 64 client VMs x {scale_bytes >> 20}MB warm reads")

    with open(args.out, "w") as handle:
        json.dump(out, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
