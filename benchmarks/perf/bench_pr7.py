"""PR 7 performance harness: streaming SLO metrics under open-loop load.

Measures, each phase in a fresh subprocess (clean RSS high-water mark):

* **RSS flatness** — a synthetic open-loop run with 10^4 samples vs one
  with 10^6 samples.  The streaming sinks are the only per-request state,
  so the gate requires the million-sample run's peak RSS to stay below
  1.15x the small run's: memory must be bounded by the sketch, not the
  sample count.
* **Determinism** — the ``load-sweep`` experiment at ``--jobs 1`` vs
  ``--jobs 4`` (canonical JSON must be byte-identical), plus a repeated
  synthetic run (same seed, same digest; different seed, different
  digest).
* **Sink throughput** — samples/second through the full TenantSlo path
  (LogHistogram + two WindowedCounters), the per-request overhead every
  load experiment pays.

Writes BENCH_pr7.json (see docs/performance.md) and exits non-zero if
any gate fails — CI runs this with ``--quick``.

Wall-clock use is deliberate and allowed here: this file measures the
*host* runtime of the harness, it is not simulation code (simlint scans
``src/repro`` only).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import resource
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..",
                                "src"))

RSS_FLATNESS_LIMIT = 1.15


def _measure_in_child(target, kwargs, conn):
    started = time.monotonic()
    payload = target(**kwargs)
    elapsed = time.monotonic() - started
    max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    conn.send({"wall_s": round(elapsed, 3), "max_rss_mb":
               round(max_rss_kb / 1024, 1), "payload": payload})
    conn.close()


def measure(target, **kwargs):
    """Run ``target(**kwargs)`` in a fresh process; return timing + result.

    A subprocess per measurement keeps one phase's RSS high-water mark
    from contaminating the next — essential for the flatness gate.
    """
    parent, child = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(target=_measure_in_child,
                                   args=(target, kwargs, child))
    proc.start()
    child.close()
    result = parent.recv()
    proc.join()
    if proc.exitcode != 0:
        raise RuntimeError(f"benchmark child failed: {target.__name__}")
    return result


# ----------------------------------------------------------- child workloads
def _synthetic_run(samples, seed):
    """One tenant, ``samples`` open-loop requests, streamed into sinks."""
    from repro.load import LoadGenerator, default_tenants

    rate = 10_000.0
    duration = samples / rate
    tenants = default_tenants(1, rate=rate, deadline_seconds=0.005,
                              n_keys=64)
    report = LoadGenerator(tenants, seed=seed).run_synthetic(duration)
    row = report.tenant("tenant1")
    return {"completions": row.completions, "digest": report.digest(),
            "p99_ms": row.p99_ms}


def _load_sweep_json(jobs):
    from repro.experiments import runner

    params = {"rates": (30.0, 60.0), "duration": 0.8, "n_tenants": 2,
              "request_bytes": 64 << 10, "deadline_ms": 2.0,
              "arrival_kind": "bursty"}
    result = runner.run_experiment("load-sweep", jobs=jobs, seed=7,
                                   params=params)
    return runner.canonical_json(result)


def _sink_throughput(samples):
    """Raw samples/s through the full TenantSlo record path."""
    from repro.load.slo import TenantSlo

    slo = TenantSlo("bench", deadline_seconds=0.005)
    started = time.monotonic()
    record, note = slo.record, slo.note_arrival
    for index in range(samples):
        note()
        t = index * 1e-4
        record(t, t + 3e-3 + (index % 7) * 1e-3)
    elapsed = time.monotonic() - started
    return {"samples": samples, "wall_s": round(elapsed, 3),
            "samples_per_s": round(samples / elapsed)}


# ------------------------------------------------------------------- phases
def phase_rss_flatness(report, failures):
    small = measure(_synthetic_run, samples=10_000, seed=1)
    large = measure(_synthetic_run, samples=1_000_000, seed=1)
    ratio = large["max_rss_mb"] / small["max_rss_mb"]
    entry = {
        "samples_small": small["payload"]["completions"],
        "samples_large": large["payload"]["completions"],
        "rss_small_mb": small["max_rss_mb"],
        "rss_large_mb": large["max_rss_mb"],
        "rss_ratio": round(ratio, 3),
        "limit": RSS_FLATNESS_LIMIT,
        "wall_small_s": small["wall_s"],
        "wall_large_s": large["wall_s"],
    }
    report["rss_flatness"] = entry
    if ratio >= RSS_FLATNESS_LIMIT:
        failures.append(
            f"RSS not flat: 1e6-sample run used {ratio:.2f}x the memory "
            f"of the 1e4-sample run (limit {RSS_FLATNESS_LIMIT}x)")
    if large["payload"]["completions"] < 990_000:
        failures.append("1e6-sample run produced suspiciously few samples: "
                        f"{large['payload']['completions']}")
    print(f"  rss: 1e4 samples {small['max_rss_mb']}MB, 1e6 samples "
          f"{large['max_rss_mb']}MB (ratio {ratio:.2f}, "
          f"limit {RSS_FLATNESS_LIMIT})")


def phase_determinism(report, failures, quick):
    repeat = measure(_synthetic_run, samples=50_000, seed=3)
    again = measure(_synthetic_run, samples=50_000, seed=3)
    other = measure(_synthetic_run, samples=50_000, seed=4)
    same = repeat["payload"]["digest"] == again["payload"]["digest"]
    different = repeat["payload"]["digest"] != other["payload"]["digest"]
    report["synthetic_determinism"] = {
        "repeat_identical": same, "seed_sensitive": different}
    if not same:
        failures.append("synthetic run not reproducible for a fixed seed")
    if not different:
        failures.append("synthetic run ignores its seed")

    serial = measure(_load_sweep_json, jobs=1)
    parallel = measure(_load_sweep_json, jobs=2 if quick else 4)
    identical = serial["payload"] == parallel["payload"]
    report["load_sweep_jobs"] = {
        "byte_identical": identical,
        "wall_serial_s": serial["wall_s"],
        "wall_parallel_s": parallel["wall_s"],
        "json_bytes": len(serial["payload"]),
    }
    if not identical:
        failures.append("load-sweep --jobs N diverged from the serial run")
    print(f"  determinism: synthetic repeat={same}, "
          f"load-sweep jobs byte-identical={identical}")


def phase_throughput(report, quick):
    samples = 200_000 if quick else 1_000_000
    result = measure(_sink_throughput, samples=samples)
    report["sink_throughput"] = result["payload"]
    print(f"  sink throughput: "
          f"{result['payload']['samples_per_s']:,} samples/s")


# --------------------------------------------------------------------- main
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller determinism/throughput phases (CI)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report to PATH")
    args = parser.parse_args(argv)

    report = {
        "bench": "pr7-streaming-slo-metrics",
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    failures = []
    print("RSS flatness (streaming sinks, open-loop synthetic run):")
    phase_rss_flatness(report, failures)
    print("Determinism gates:")
    phase_determinism(report, failures, args.quick)
    print("Sink throughput:")
    phase_throughput(report, args.quick)

    report["failures"] = failures
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
