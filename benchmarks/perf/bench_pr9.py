"""PR 9 performance harness: elastic membership + churn under load.

Measures, each phase in a fresh subprocess (clean RSS high-water mark):

* **Churn-sweep determinism** — the ``scale-churn`` sweep at ``--jobs 1``
  vs ``--jobs 4`` (canonical JSON must be byte-identical) plus a serial
  repeat, because churn scripts run concurrently with measured reads and
  any hidden ordering dependence would show up here first.
* **Recovery gates** — a full-churn vRead point must actually exercise
  the Section 6 story: the library degrades while the daemon is down
  (0 < degraded fraction < 1), re-probes it, recovers within the window,
  and the decommission triggers background re-replication.
* **Membership-op throughput** — wall-clock rate of pure-bookkeeping
  membership operations (datanode joins, client VM add/remove cycles);
  these run between simulation events and must stay cheap.
* **Churn-free neutrality** — a static cluster run must leave the
  membership version at 0 and reproduce its stream digest exactly: the
  controller is pure bookkeeping until an operation is invoked.

Writes BENCH_pr9.json (see docs/performance.md) and exits non-zero if
any gate fails — CI runs this with ``--quick``.

Wall-clock use is deliberate and allowed here: this file measures the
*host* runtime of the harness, it is not simulation code (simlint scans
``src/repro`` only).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import resource
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..",
                                "src"))

#: The degraded window must be real but bounded: recovery inside the
#: measurement window caps it well below 1.
DEGRADED_FRACTION_MAX = 0.8


def _measure_in_child(target, kwargs, conn):
    started = time.monotonic()
    payload = target(**kwargs)
    elapsed = time.monotonic() - started
    max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    conn.send({"wall_s": round(elapsed, 3), "max_rss_mb":
               round(max_rss_kb / 1024, 1), "payload": payload})
    conn.close()


def measure(target, **kwargs):
    """Run ``target(**kwargs)`` in a fresh process; return timing + result."""
    parent, child = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(target=_measure_in_child,
                                   args=(target, kwargs, child))
    proc.start()
    child.close()
    result = parent.recv()
    proc.join()
    if proc.exitcode != 0:
        raise RuntimeError(f"benchmark child failed: {target.__name__}")
    return result


# ----------------------------------------------------------- child workloads
def _churn_sweep_json(jobs):
    from repro.experiments import runner

    result = runner.run_experiment("scale-churn", profile="quick", jobs=jobs,
                                   seed=0)
    return {"json": runner.canonical_json(result), "series": result.series}


def _full_churn_point(file_bytes, duration):
    from dataclasses import asdict

    from repro.experiments.scale_churn import _measure as churn_measure

    point = churn_measure(True, "full", file_bytes, duration, seed=1)
    return asdict(point)


def _membership_ops(cycles):
    """Wall-clock rate of pure-bookkeeping membership operations."""
    from repro.cluster import VirtualHadoopCluster, rack_cluster

    cluster = VirtualHadoopCluster(
        topology=rack_cluster(2, 2, clients=2), replication=2)
    controller = cluster.membership
    started = time.monotonic()
    for index in range(cycles):
        vm = controller.add_client_vm(f"bench{index}")
        controller.remove_client_vm(vm.name)
    client_elapsed = time.monotonic() - started
    started = time.monotonic()
    joins = max(1, cycles // 10)
    for index in range(joins):
        controller.add_datanode(cluster.hosts[index % len(cluster.hosts)])
    join_elapsed = time.monotonic() - started
    return {"client_cycles": cycles,
            "client_cycles_per_s": round(cycles / client_elapsed),
            "datanode_joins": joins,
            "datanode_joins_per_s": round(joins / join_elapsed),
            "final_version": controller.version}


def _churn_free_digest(file_bytes):
    """Static-cluster run: digest + membership version must not move."""
    from repro.cluster import VirtualHadoopCluster
    from repro.storage.content import PatternSource

    cluster = VirtualHadoopCluster(vread=True,
                                   block_size=max(file_bytes // 2, 1 << 20))

    def load():
        yield from cluster.write_dataset(
            "/bench/static", PatternSource(file_bytes, seed=7))

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    client = cluster.clients.get()

    def read():
        source = yield from client.read_file("/bench/static", 1 << 20)
        return source.checksum()

    checksum = cluster.run(cluster.sim.process(read()))
    return {"digest": cluster.stream_layer.digest(),
            "checksum": checksum,
            "membership_version": cluster.membership.version,
            "membership_log": len(cluster.membership.log),
            "now": cluster.sim.now}


# ------------------------------------------------------------------- phases
def phase_determinism(report, failures, quick):
    serial = measure(_churn_sweep_json, jobs=1)
    parallel = measure(_churn_sweep_json, jobs=2 if quick else 4)
    identical = serial["payload"]["json"] == parallel["payload"]["json"]
    repeat = measure(_churn_sweep_json, jobs=1)
    repeatable = repeat["payload"]["json"] == serial["payload"]["json"]
    report["churn_sweep_jobs"] = {
        "byte_identical": identical,
        "repeat_identical": repeatable,
        "wall_serial_s": serial["wall_s"],
        "wall_parallel_s": parallel["wall_s"],
        "json_bytes": len(serial["payload"]["json"]),
    }
    if not identical:
        failures.append("scale-churn --jobs N diverged from the serial run")
    if not repeatable:
        failures.append("scale-churn serial repeat diverged (hidden state)")
    print(f"  determinism: churn-sweep jobs byte-identical={identical}, "
          f"serial repeat={repeatable}")


def phase_recovery(report, failures, quick):
    file_bytes = (1 if quick else 2) << 20
    duration = 1.5 if quick else 2.0
    result = measure(_full_churn_point, file_bytes=file_bytes,
                     duration=duration)
    point = result["payload"]
    report["full_churn_recovery"] = dict(point, wall_s=result["wall_s"])
    if point["reprobes"] < 1:
        failures.append("full churn: degraded library never re-probed the "
                        "restarted daemon")
    if point["recoveries"] < 1:
        failures.append("full churn: vRead fast path never recovered inside "
                        "the measurement window")
    if not 0 < point["degraded_fraction"] < DEGRADED_FRACTION_MAX:
        failures.append(
            f"full churn: degraded fraction {point['degraded_fraction']:.2f} "
            f"outside (0, {DEGRADED_FRACTION_MAX}) — the daemon crash either "
            f"never degraded the library or recovery missed the window")
    if point["re_replications"] < 1:
        failures.append("full churn: decommission drained no replicas")
    if point["membership_version"] < 3:
        failures.append(
            f"full churn: membership version {point['membership_version']} "
            f"< 3 (migrate + decommission + join should each bump it)")
    print(f"  recovery: {point['reprobes']} re-probes, "
          f"{point['recoveries']} recoveries "
          f"({point['recovery_ms']:.0f}ms back to fast path), degraded "
          f"{100 * point['degraded_fraction']:.0f}% of window, "
          f"{point['re_replications']} re-replications "
          f"({point['re_replication_bytes'] >> 20}MB)")


def phase_membership_ops(report, quick):
    cycles = 200 if quick else 1000
    result = measure(_membership_ops, cycles=cycles)
    report["membership_ops"] = dict(result["payload"],
                                    wall_s=result["wall_s"])
    print(f"  membership ops: "
          f"{result['payload']['client_cycles_per_s']:,} client "
          f"add/remove cycles/s, "
          f"{result['payload']['datanode_joins_per_s']:,} datanode joins/s")


def phase_churn_free(report, failures, quick):
    file_bytes = (2 if quick else 8) << 20
    first = measure(_churn_free_digest, file_bytes=file_bytes)
    second = measure(_churn_free_digest, file_bytes=file_bytes)
    same = first["payload"] == second["payload"]
    version = first["payload"]["membership_version"]
    report["churn_free_neutrality"] = {
        "repeat_identical": same,
        "membership_version": version,
        "digest": first["payload"]["digest"],
    }
    if not same:
        failures.append("churn-free cluster run not reproducible "
                        "(digest or timeline drifted)")
    if version != 0:
        failures.append(
            f"churn-free cluster bumped membership version to {version}; "
            f"the controller must be pure bookkeeping until invoked")
    print(f"  churn-free: repeat identical={same}, "
          f"membership version={version}")


# --------------------------------------------------------------------- main
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller determinism/recovery phases (CI)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report to PATH")
    args = parser.parse_args(argv)

    report = {
        "bench": "pr9-elastic-membership",
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    failures = []
    print("Determinism gates (churn sweep fan-out):")
    phase_determinism(report, failures, args.quick)
    print("Recovery gates (full churn, vRead):")
    phase_recovery(report, failures, args.quick)
    print("Membership-op throughput:")
    phase_membership_ops(report, args.quick)
    print("Churn-free neutrality:")
    phase_churn_free(report, failures, args.quick)

    report["failures"] = failures
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
