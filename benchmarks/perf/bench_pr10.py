"""PR 10 performance harness: timer-wheel kernel + epoch coalescing.

Measures, each workload in a fresh subprocess (clean module memos, clean
toggle state, clean RSS high-water mark):

* kernel storms on the hierarchical timer wheel vs the binary-heap
  reference (``REPRO_LEGACY_HEAP`` toggle), with the wheel occupancy/
  cascade/overflow counters recorded: a dense raw-dispatch storm (pure
  kernel dispatch, where the wheel wins), the PR 5 chained storm
  (process-machinery-bound, where the wheel runs at parity), and a
  cancelled-timer churn;
* registry experiments (fig03, fig11, scale-racks) with **all** fast
  planes enabled (wheel + coalesced scheduler + zero-copy/memoized
  buffers) vs the full reference configuration (``REPRO_LEGACY_HEAP`` +
  ``REPRO_LEGACY_SLICES`` + ``REPRO_LEGACY_BUFFERS``), with a
  byte-identity check between the two — fast paths may only change host
  wall time, never simulated results;
* a **contended** scale-racks point: the rack layout filled with
  lookbusy background VMs (the paper's "4vms" contention, oversubscribing
  every host's cores) driven to a fixed simulated horizon with epoch
  coalescing off vs on, byte-identity checked on the final clock, the
  checksum-verified reads, and every host's accounting snapshot.

Determinism gates always run.  Wall-clock speedup gates (including the
event-storm events/sec floor) only *assert* on full-size runs on
multi-core hosts; on a single-core host or under ``--quick`` they are
recorded as skipped with an explicit note in the JSON (see
``speedup_gates``).

Writes BENCH_pr10.json (see docs/performance.md) and exits non-zero if
any determinism gate — or, on a multi-core host, any speedup gate —
fails.  CI runs this with ``--quick``.

Wall-clock use is deliberate and allowed here: this file measures the
*host* runtime of the simulator, it is not simulation code (simlint
scans ``src/repro`` only).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import os
import platform
import resource
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..",
                                "src"))

#: Wall-clock gates: {speedup key: floor}.  Chosen comfortably below the
#: measured values on the reference host so normal jitter never trips
#: them, while a real regression (a fast path silently disabled) does.
SPEEDUP_FLOORS = {
    "event_storm_wheel_vs_heap": 2.0,
    "scale-racks_fast_vs_legacy": 1.15,
    "contended-racks_epochs_vs_off": 1.1,
}

#: The acceptance floor for bare kernel dispatch on the bench host.
EVENT_STORM_FLOOR = 3_000_000


def _measure_in_child(target, kwargs, conn):
    started = time.monotonic()
    payload = target(**kwargs)
    elapsed = time.monotonic() - started
    max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    conn.send({"wall_s": round(elapsed, 3), "max_rss_mb":
               round(max_rss_kb / 1024, 1), "payload": payload})
    conn.close()


def measure(target, **kwargs):
    """Run ``target(**kwargs)`` in a fresh process; return timing + result.

    A subprocess per measurement keeps sweep memos, toggle state, the
    materialized-content cache, and the RSS high-water mark of one phase
    from contaminating the next.
    """
    parent, child = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(target=_measure_in_child,
                                   args=(target, kwargs, child))
    proc.start()
    child.close()
    result = parent.recv()
    proc.join()
    if proc.exitcode != 0:
        raise RuntimeError(f"benchmark child failed: {target.__name__}")
    return result


# ----------------------------------------------------------- child workloads
def _run_experiment(name, profile, legacy):
    """One registry experiment: all fast planes vs the full reference."""
    from repro.experiments import runner
    from repro.hostmodel.cpu import use_legacy_slices
    from repro.sim.kernel import use_legacy_heap
    from repro.storage.content import use_legacy_buffers

    use_legacy_heap(legacy)
    use_legacy_slices(legacy)
    use_legacy_buffers(legacy)
    result = runner.run_experiment(name, profile=profile, jobs=1, seed=0)
    return runner.canonical_json(result)


def _run_event_storm(n_events, legacy):
    """Dense raw-dispatch storm: pre-scheduled timers at 1e-7 spacing,
    drained in one ``run()``.

    This is pure kernel dispatch — no process machinery — so it isolates
    the pending-structure cost the wheel replaces.  Only the drain is
    timed; minting the timers is setup.
    """
    import time as _time

    from repro.sim import Simulator
    from repro.sim.kernel import (kernel_stats, reset_kernel_stats,
                                  use_legacy_heap)

    use_legacy_heap(legacy)
    reset_kernel_stats()
    sim = Simulator()
    for index in range(n_events):
        sim.timeout(index * 1e-7)
    started = _time.monotonic()
    sim.run()
    drain_s = _time.monotonic() - started
    stats = kernel_stats()
    return {"events": stats["events_processed"],
            "drain_s": round(drain_s, 3),
            "wheel_advances": stats["wheel_advances"],
            "wheel_cascades": stats["wheel_cascades"],
            "wheel_overflow": stats["wheel_overflow"],
            "wheel_max_bucket": stats["wheel_max_bucket"]}


def _run_chained_storm(n_events, legacy):
    """Process-driven chained timeouts (the PR 5 storm, for continuity).

    Each event resumes a generator and mints the next timer, so process
    machinery dominates and the wheel runs at parity with the heap — the
    row documents that the wheel costs nothing where it cannot win.
    """
    from repro.sim import Simulator
    from repro.sim.kernel import (kernel_stats, reset_kernel_stats,
                                  use_legacy_heap)

    use_legacy_heap(legacy)
    reset_kernel_stats()
    sim = Simulator()

    def ticker():
        for _ in range(n_events):
            yield sim.timeout(1e-6)

    sim.run_until_complete(sim.process(ticker()))
    return {"events": kernel_stats()["events_processed"]}


def _run_cancel_storm(n_timers, legacy):
    """Deadline-timer churn: mint, cancel, repeat — O(1) wheel cancel vs
    heap compaction."""
    from repro.sim import Simulator
    from repro.sim.kernel import (kernel_stats, reset_kernel_stats,
                                  use_legacy_heap)

    use_legacy_heap(legacy)
    reset_kernel_stats()
    sim = Simulator()

    def churner():
        for index in range(n_timers):
            deadline = sim.timeout(1e3)     # far-future deadline
            yield sim.timeout(1e-6)         # the guarded op "wins"
            deadline.cancel()
            if not index % 1024:
                sim.peek()

    sim.run_until_complete(sim.process(churner()))
    stats = kernel_stats()
    return {"cancelled_discarded": stats["cancelled_discarded"],
            "heap_high_water": stats["heap_high_water"],
            "compactions": stats["compactions"],
            "wheel_overflow": stats["wheel_overflow"]}


def _run_contended_point(epochs, horizon, bg_per_host):
    """A contended scale-racks point: rack layout + lookbusy fill.

    ``bg_per_host`` hogs oversubscribe each 4-core host, so the CPU
    scheduler spends the run in sustained contended rounds — exactly what
    epoch coalescing replays as closed-form arithmetic.  The cluster
    writes and checksum-verifies real payloads first, then runs to a
    fixed simulated horizon under the background load.  The returned
    payload fingerprints the final clock, the checksum verdicts, and
    every host's accounting snapshot: epochs on and off must agree on all
    of it, byte for byte.
    """
    from repro.cluster import VirtualHadoopCluster, rack_cluster
    from repro.cluster.topology import VmSpec
    from repro.hostmodel.cpu import epoch_stats, use_epochs
    from repro.sim import AllOf
    from repro.storage.content import PatternSource

    use_epochs(epochs)
    topology = rack_cluster(1, 2, clients=2)
    for rack in topology.racks:
        for host in rack.hosts:
            for j in range(bg_per_host):
                host.add(VmSpec(f"{host.name}-bg{j + 1}", "background"))
    cluster = VirtualHadoopCluster(block_size=1 << 20, replication=2,
                                   vread=True, topology=topology)
    payloads = [PatternSource(1 << 20, seed=80 + i)
                for i in range(len(cluster.client_vms))]
    for payload in payloads:
        payload.checksum()      # synthesize outside the contended run

    def load():
        for i, payload in enumerate(payloads):
            yield from cluster.write_dataset(f"/racks/f{i}", payload)

    cluster.run(cluster.sim.process(load()))
    # No settle(): the lookbusy hogs never quiesce (see load_dataset).
    clients = [cluster.clients.get(vm=vm) for vm in cluster.client_vms]
    checks = []

    def reader(client, index):
        source = yield from client.read_file(f"/racks/f{index}", 1 << 20)
        checks.append(source.checksum() == payloads[index].checksum())

    def job():
        readers = [cluster.sim.process(reader(client, i))
                   for i, client in enumerate(clients)]
        yield AllOf(cluster.sim, readers)

    cluster.run(cluster.sim.process(job()))
    cluster.sim.run(until=cluster.sim.now + horizon)
    for hog in cluster.lookbusy:
        hog.stop()
    observed = (round(cluster.sim.now, 9), all(checks),
                {host.name: sorted(host.accounting.snapshot().items())
                 for host in cluster.hosts})
    return {"fingerprint":
            hashlib.sha256(repr(observed).encode()).hexdigest(),
            "sim_now": observed[0],
            "checksums_verified": all(checks),
            "epoch_stats": dict(epoch_stats())}


# ------------------------------------------------------------------ phases
def bench_experiments(profile, out, failures):
    for name in ("fig03", "fig11", "scale-racks"):
        legacy = measure(_run_experiment, name=name, profile=profile,
                         legacy=True)
        fast = measure(_run_experiment, name=name, profile=profile,
                       legacy=False)
        identical = legacy.pop("payload") == fast.pop("payload")
        out["benchmarks"][f"{name}_legacy"] = legacy
        out["benchmarks"][f"{name}_fast"] = fast
        out["determinism"][f"{name}_fast_vs_legacy"] = identical
        out["speedups"][f"{name}_fast_vs_legacy"] = round(
            legacy["wall_s"] / max(fast["wall_s"], 1e-9), 2)
        if not identical:
            failures.append(f"{name}: fast planes diverged from the "
                            f"reference configuration")
        print(f"  {name:12s} legacy {legacy['wall_s']:6.2f}s   "
              f"fast {fast['wall_s']:6.2f}s   "
              f"{out['speedups'][f'{name}_fast_vs_legacy']:.2f}x   "
              f"identical={identical}")


def bench_storms(out, quick):
    events = 200_000 if quick else 1_000_000
    rows = {}
    for label, legacy in (("wheel", False), ("heap", True)):
        storm = measure(_run_event_storm, n_events=events, legacy=legacy)
        payload = storm["payload"]
        rate = round(payload["events"] / max(payload["drain_s"], 1e-9))
        rows[label] = payload["drain_s"]
        out["benchmarks"][f"event_storm_{label}"] = {
            "wall_s": storm["wall_s"], "drain_s": payload["drain_s"],
            "events": payload["events"], "events_per_second": rate,
            "wheel_advances": payload["wheel_advances"],
            "wheel_cascades": payload["wheel_cascades"],
            "wheel_overflow": payload["wheel_overflow"],
            "wheel_max_bucket": payload["wheel_max_bucket"]}
        print(f"  event storm  {label:5s} {payload['drain_s']:6.2f}s   "
              f"{rate:,} events/s")
    out["speedups"]["event_storm_wheel_vs_heap"] = round(
        rows["heap"] / max(rows["wheel"], 1e-9), 2)

    chained = {}
    for label, legacy in (("wheel", False), ("heap", True)):
        storm = measure(_run_chained_storm, n_events=events, legacy=legacy)
        chained[label] = storm["wall_s"]
        out["benchmarks"][f"chained_storm_{label}"] = {
            "wall_s": storm["wall_s"],
            "events": storm["payload"]["events"]}
        print(f"  chain storm  {label:5s} {storm['wall_s']:6.2f}s")
    out["speedups"]["chained_storm_wheel_vs_heap"] = round(
        chained["heap"] / max(chained["wheel"], 1e-9), 2)

    timers = 100_000 if quick else 500_000
    cancel_rows = {}
    for label, legacy in (("wheel", False), ("heap", True)):
        churn = measure(_run_cancel_storm, n_timers=timers, legacy=legacy)
        payload = churn["payload"]
        cancel_rows[label] = churn["wall_s"]
        out["benchmarks"][f"cancel_storm_{label}"] = {
            "wall_s": churn["wall_s"], **payload}
        print(f"  cancel storm {label:5s} {churn['wall_s']:6.2f}s   "
              f"discarded {payload['cancelled_discarded']}")
    out["speedups"]["cancel_storm_wheel_vs_heap"] = round(
        cancel_rows["heap"] / max(cancel_rows["wheel"], 1e-9), 2)


def bench_epoch_point(out, failures, quick):
    horizon = 0.5 if quick else 2.0
    off = measure(_run_contended_point, epochs=False, horizon=horizon,
                  bg_per_host=6)
    on = measure(_run_contended_point, epochs=True, horizon=horizon,
                 bg_per_host=6)
    identical = (off["payload"]["fingerprint"]
                 == on["payload"]["fingerprint"])
    verified = (off["payload"]["checksums_verified"]
                and on["payload"]["checksums_verified"])
    stats = on["payload"]["epoch_stats"]
    out["benchmarks"]["contended-racks_epochs_off"] = {
        "wall_s": off["wall_s"], "max_rss_mb": off["max_rss_mb"],
        "sim_now": off["payload"]["sim_now"]}
    out["benchmarks"]["contended-racks_epochs_on"] = {
        "wall_s": on["wall_s"], "max_rss_mb": on["max_rss_mb"],
        "sim_now": on["payload"]["sim_now"], **stats}
    out["determinism"]["contended-racks_epochs_vs_off"] = identical
    out["determinism"]["contended-racks_checksums_verified"] = verified
    out["speedups"]["contended-racks_epochs_vs_off"] = round(
        off["wall_s"] / max(on["wall_s"], 1e-9), 2)
    if not identical:
        failures.append("contended-racks: epoch coalescing diverged from "
                        "the slice-granular run")
    if not verified:
        failures.append("contended-racks: payload checksum verification "
                        "failed")
    if not stats["epochs_formed"]:
        failures.append("contended-racks: no epochs formed — the point is "
                        "not actually contended")
    print(f"  contended    off {off['wall_s']:6.2f}s   "
          f"on {on['wall_s']:6.2f}s   "
          f"{out['speedups']['contended-racks_epochs_vs_off']:.2f}x   "
          f"identical={identical}  epochs={stats['epochs_formed']}")


def gate_speedups(out, failures, quick):
    """Wall-clock gates: assert on full-size multi-core runs, otherwise
    record the measurement as skipped with an explicit note in the JSON.
    Determinism gates ran regardless."""
    multi_core = (out["host"]["cpu_count"] or 1) > 1
    if not multi_core:
        skip_note = ("single-core host: wall-clock speedups are not "
                     "meaningful here; determinism gates still ran")
    elif quick:
        skip_note = ("quick profile: datasets are startup-dominated, so "
                     "wall-clock floors only assert on full-size runs; "
                     "determinism gates still ran")
    else:
        skip_note = None
    gates = dict(SPEEDUP_FLOORS)
    gates["event_storm_events_per_second"] = EVENT_STORM_FLOOR
    rate = out["benchmarks"]["event_storm_wheel"]["events_per_second"]
    for key, floor in gates.items():
        measured = (rate if key == "event_storm_events_per_second"
                    else out["speedups"].get(key))
        if skip_note is not None:
            out["speedup_gates"][key] = {"floor": floor,
                                         "measured": measured,
                                         "skipped": skip_note}
            continue
        passed = measured is not None and measured >= floor
        out["speedup_gates"][key] = {"floor": floor, "measured": measured,
                                     "passed": passed}
        if not passed:
            failures.append(f"speedup gate {key}: {measured} < {floor}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized datasets (minutes -> seconds)")
    parser.add_argument("--out", default="BENCH_pr10.json",
                        help="output JSON path (default: BENCH_pr10.json)")
    args = parser.parse_args(argv)

    profile = "quick" if args.quick else "default"
    out = {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "profile": profile,
        "benchmarks": {},
        "determinism": {},
        "speedups": {},
        "speedup_gates": {},
        "notes": [],
    }
    failures = []

    print(f"all fast planes vs full reference (profile={profile}):")
    bench_experiments(profile, out, failures)

    print("kernel storms, wheel vs heap:")
    bench_storms(out, args.quick)

    print("epoch coalescing on a contended rack point:")
    bench_epoch_point(out, failures, args.quick)

    gate_speedups(out, failures, args.quick)

    out["notes"].append(
        "legacy = REPRO_LEGACY_HEAP + REPRO_LEGACY_SLICES + "
        "REPRO_LEGACY_BUFFERS (the full reference configuration); "
        "simulated results are checked byte-identical between the two")
    out["notes"].append(
        "event_storm times the drain only (pure kernel dispatch); the "
        "chained storm is process-machinery-bound, so wheel-vs-heap "
        "parity there is expected and deliberately ungated")
    out["notes"].append(
        "contended-racks drives a lookbusy-filled rack layout to a fixed "
        "simulated horizon; epoch on/off agreement covers the final "
        "clock, read checksums, and per-host accounting snapshots")

    with open(args.out, "w") as handle:
        json.dump(out, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
