"""PR 5 performance harness: coalesced scheduler + kernel diet.

Measures, each workload in a fresh subprocess (clean module memos, clean
RSS high-water mark):

* registry experiments (fig03, fig11, scale-racks) with the coalesced
  fast path vs the slice-loop reference (``REPRO_LEGACY_SLICES`` toggle),
  with a byte-identity check between the two — the optimization may only
  change host wall time, never simulated results;
* the fig11 sweep at ``--jobs 1`` vs ``--jobs 4`` under the fast path
  (byte-identity check: fan-out must stay deterministic);
* kernel micro-benchmarks: bare event dispatch throughput, a
  cancelled-timer storm exercising lazy heap compaction, and the
  ``Tracer.record`` call-site guard (enabled vs filtered vs guarded-off).

Writes BENCH_pr5.json (see docs/performance.md) and exits non-zero if any
determinism gate fails — CI runs this with ``--quick``.

Wall-clock use is deliberate and allowed here: this file measures the
*host* runtime of the simulator, it is not simulation code (simlint scans
``src/repro`` only).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import resource
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..",
                                "src"))


def _measure_in_child(target, kwargs, conn):
    started = time.monotonic()
    payload = target(**kwargs)
    elapsed = time.monotonic() - started
    max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    conn.send({"wall_s": round(elapsed, 3), "max_rss_mb":
               round(max_rss_kb / 1024, 1), "payload": payload})
    conn.close()


def measure(target, **kwargs):
    """Run ``target(**kwargs)`` in a fresh process; return timing + result.

    A subprocess per measurement keeps sweep memos, toggle state and the
    RSS high-water mark of one phase from contaminating the next.
    """
    parent, child = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(target=_measure_in_child,
                                   args=(target, kwargs, child))
    proc.start()
    child.close()
    result = parent.recv()
    proc.join()
    if proc.exitcode != 0:
        raise RuntimeError(f"benchmark child failed: {target.__name__}")
    return result


# ----------------------------------------------------------- child workloads
def _run_experiment(name, profile, jobs, legacy):
    from repro.experiments import runner
    from repro.hostmodel.cpu import use_legacy_slices

    use_legacy_slices(legacy)
    result = runner.run_experiment(name, profile=profile, jobs=jobs, seed=0)
    return runner.canonical_json(result)


def _run_event_storm(n_events):
    """Bare kernel throughput: n chained zero-work timeouts."""
    from repro.sim import Simulator
    from repro.sim.kernel import kernel_stats, reset_kernel_stats

    reset_kernel_stats()
    sim = Simulator()

    def ticker():
        for _ in range(n_events):
            yield sim.timeout(1e-6)

    sim.run_until_complete(sim.process(ticker()))
    return {"events": kernel_stats()["events_processed"]}


def _run_cancel_storm(n_timers):
    """Deadline-timer churn: mint, cancel, repeat — compaction must keep
    the heap (and peek) from drowning in dead entries."""
    from repro.sim import Simulator
    from repro.sim.kernel import kernel_stats, reset_kernel_stats

    reset_kernel_stats()
    sim = Simulator()

    def churner():
        for index in range(n_timers):
            deadline = sim.timeout(1e3)     # far-future deadline
            yield sim.timeout(1e-6)         # the guarded op "wins"
            deadline.cancel()
            if not index % 1024:
                sim.peek()

    sim.run_until_complete(sim.process(churner()))
    stats = kernel_stats()
    return {"cancelled_discarded": stats["cancelled_discarded"],
            "heap_high_water": stats["heap_high_water"],
            "compactions": stats["compactions"]}


def _run_tracer_bench(n_records, mode):
    """Tracer.record cost: enabled, filtered-inside, or guarded call site."""
    from repro.metrics.tracing import Tracer

    if mode == "enabled":
        tracer = Tracer(capacity=1024)
    else:
        tracer = Tracer(capacity=1024, categories={"other"})
    if mode == "guarded":
        # The PR 5 call-site idiom: skip building **fields entirely.
        wants = tracer.wants("sched")
        count = 0
        for index in range(n_records):
            if wants:
                tracer.record(0.0, "sched", "dispatch",
                              thread="t", cycles=index)
            count += 1
        return {"recorded": tracer.recorded, "visited": count}
    for index in range(n_records):
        tracer.record(0.0, "sched", "dispatch", thread="t", cycles=index)
    return {"recorded": tracer.recorded, "visited": n_records}


#: Wall-clock gates: {speedup key: floor}.  Comfortably below the values
#: measured on the reference host, so jitter never trips them but a
#: silently-disabled fast path does.  scale-racks is deliberately
#: ungated here: it is content-synthesis-bound, so the slices toggle
#: alone cannot move it (bench_pr10 gates it against the full reference
#: configuration instead).
SPEEDUP_FLOORS = {
    "fig03_fast_vs_legacy": 1.1,
    "tracer_guarded_vs_filtered": 1.5,
}


def gate_speedups(out, failures, quick):
    """Wall-clock gates: assert on full-size multi-core runs, otherwise
    record the measurement as skipped with an explicit note in the JSON.
    Determinism gates ran regardless."""
    multi_core = (out["host"]["cpu_count"] or 1) > 1
    if not multi_core:
        skip_note = ("single-core host: wall-clock speedups are not "
                     "meaningful here; determinism gates still ran")
    elif quick:
        skip_note = ("quick profile: datasets are startup-dominated, so "
                     "wall-clock floors only assert on full-size runs; "
                     "determinism gates still ran")
    else:
        skip_note = None
    out["speedup_gates"] = {}
    for key, floor in SPEEDUP_FLOORS.items():
        measured = out["speedups"].get(key)
        if skip_note is not None:
            out["speedup_gates"][key] = {"floor": floor,
                                         "measured": measured,
                                         "skipped": skip_note}
            continue
        passed = measured is not None and measured >= floor
        out["speedup_gates"][key] = {"floor": floor, "measured": measured,
                                     "passed": passed}
        if not passed:
            failures.append(f"speedup gate {key}: {measured} < {floor}")


# ------------------------------------------------------------------ phases
def bench_slices(name, profile, out, failures):
    legacy = measure(_run_experiment, name=name, profile=profile,
                     jobs=1, legacy=True)
    fast = measure(_run_experiment, name=name, profile=profile,
                   jobs=1, legacy=False)
    identical = legacy.pop("payload") == fast.pop("payload")
    out["benchmarks"][f"{name}_legacy_slices"] = legacy
    out["benchmarks"][f"{name}_fast"] = fast
    out["determinism"][f"{name}_legacy_vs_fast"] = identical
    out["speedups"][f"{name}_fast_vs_legacy"] = round(
        legacy["wall_s"] / fast["wall_s"], 2)
    if not identical:
        failures.append(f"{name}: fast path diverged from legacy slices")
    print(f"  {name:12s} legacy {legacy['wall_s']:6.2f}s   "
          f"fast {fast['wall_s']:6.2f}s   "
          f"{out['speedups'][f'{name}_fast_vs_legacy']:.2f}x   "
          f"identical={identical}")


def bench_jobs(name, profile, out, failures):
    serial = measure(_run_experiment, name=name, profile=profile,
                     jobs=1, legacy=False)
    fanned = measure(_run_experiment, name=name, profile=profile,
                     jobs=4, legacy=False)
    identical = serial.pop("payload") == fanned.pop("payload")
    out["benchmarks"][f"{name}_jobs1"] = serial
    out["benchmarks"][f"{name}_jobs4"] = fanned
    out["determinism"][f"{name}_jobs1_vs_jobs4"] = identical
    if not identical:
        failures.append(f"{name}: --jobs 4 diverged from --jobs 1")
    print(f"  {name:12s} jobs1 {serial['wall_s']:6.2f}s   "
          f"jobs4 {fanned['wall_s']:6.2f}s   identical={identical}")


def bench_kernel(out, quick):
    events = 200_000 if quick else 1_000_000
    storm = measure(_run_event_storm, n_events=events)
    rate = round(storm["payload"]["events"] / storm["wall_s"])
    out["benchmarks"]["event_storm"] = {
        "wall_s": storm["wall_s"], "events": storm["payload"]["events"],
        "events_per_second": rate}
    print(f"  event storm  {storm['wall_s']:6.2f}s   {rate:,} events/s")

    timers = 100_000 if quick else 500_000
    churn = measure(_run_cancel_storm, n_timers=timers)
    payload = churn["payload"]
    out["benchmarks"]["cancel_storm"] = {
        "wall_s": churn["wall_s"], **payload}
    print(f"  cancel storm {churn['wall_s']:6.2f}s   "
          f"high-water {payload['heap_high_water']} "
          f"(compactions {payload['compactions']})")


def bench_tracer(out, quick):
    records = 200_000 if quick else 1_000_000
    rows = {}
    for mode in ("enabled", "filtered", "guarded"):
        timing = measure(_run_tracer_bench, n_records=records, mode=mode)
        rows[mode] = timing["wall_s"]
        out["benchmarks"][f"tracer_{mode}"] = {
            "wall_s": timing["wall_s"],
            "recorded": timing["payload"]["recorded"]}
    out["speedups"]["tracer_guarded_vs_filtered"] = round(
        rows["filtered"] / max(rows["guarded"], 1e-9), 2)
    print(f"  tracer       enabled {rows['enabled']:.2f}s   "
          f"filtered {rows['filtered']:.2f}s   guarded {rows['guarded']:.2f}s")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized datasets (minutes -> seconds)")
    parser.add_argument("--out", default="BENCH_pr5.json",
                        help="output JSON path (default: BENCH_pr5.json)")
    args = parser.parse_args(argv)

    profile = "quick" if args.quick else "default"
    out = {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "profile": profile,
        "benchmarks": {},
        "determinism": {},
        "speedups": {},
        "notes": [],
    }
    failures = []

    print(f"coalesced scheduler vs slice-loop reference (profile={profile}):")
    bench_slices("fig03", profile, out, failures)
    bench_slices("fig11", profile, out, failures)
    bench_slices("scale-racks", profile, out, failures)

    print("fan-out determinism under the fast path:")
    bench_jobs("fig11", profile, out, failures)

    print("kernel micro-benchmarks:")
    bench_kernel(out, args.quick)
    bench_tracer(out, args.quick)

    gate_speedups(out, failures, args.quick)
    out["notes"].append(
        "speedups compare the same commit with REPRO_LEGACY_SLICES on vs "
        "off; simulated results are checked byte-identical between the two")

    with open(args.out, "w") as handle:
        json.dump(out, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
