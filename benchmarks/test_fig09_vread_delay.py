"""Figure 9 bench: data access delay, vanilla vs vRead, 2 and 4 VMs.

Shape checks (paper: delay reduced up to 40% with 2 VMs, up to 50% with
4 VMs): vRead is faster at every request size in every scenario; CPU
contention (4 VMs) hurts vanilla more than vRead, widening the gap.
"""

from repro.experiments import fig09_vread_delay as fig09

FILE_BYTES = 16 << 20


def test_fig09_vread_delay(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig09.run(file_bytes=FILE_BYTES), rounds=1, iterations=1)
    lines = [result.render()]
    for vms in ("2vms", "4vms"):
        best = max(result.reduction_pct(vms, cached, size)
                   for cached in (False, True)
                   for size in result.no_cache.x_values)
        lines.append(f"  max delay reduction {vms}: {best:.1f}% "
                     f"(paper: up to {'40' if vms == '2vms' else '50'}%)")
    report("\n".join(lines))

    for figure in (result.no_cache, result.cache):
        for size in figure.x_values:
            for vms in ("2vms", "4vms"):
                vanilla = figure.value(f"vanilla-{vms}", size)
                vread = figure.value(f"vRead-{vms}", size)
                assert vread < vanilla, (
                    f"{figure.figure} {size} {vms}: vRead must be faster")
            # Contention slows everyone down...
            assert (figure.value("vanilla-4vms", size)
                    > figure.value("vanilla-2vms", size))
    # ...but hurts vanilla more than vRead at the paper's headline point
    # (1MB requests, warm cache).
    vanilla_gap = (result.cache.value("vanilla-4vms", "1MB")
                   / result.cache.value("vanilla-2vms", "1MB"))
    vread_gap = (result.cache.value("vRead-4vms", "1MB")
                 / result.cache.value("vRead-2vms", "1MB"))
    assert vanilla_gap > 1.05
    # Meaningful reductions in the paper's direction.
    assert result.reduction_pct("2vms", True, "1MB") > 20.0
    assert result.reduction_pct("4vms", True, "1MB") > 25.0
