"""Figure 12 bench: TestDFSIO CPU running time, all six panels.

Shape checks: vRead consumes less client CPU than vanilla in every cell
(the benchmark's point: the throughput gains of Fig 11 come *with* CPU
savings, not at their expense), and CPU time shrinks as frequency rises.
"""

from repro.experiments import fig12_dfsio_cputime as fig12

FILE_BYTES = 32 << 20


def test_fig12_dfsio_cputime(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig12.run(file_bytes=FILE_BYTES), rounds=1, iterations=1)
    saving = result.cpu_saving_pct("colocated", "read", "2.0GHz", 2)
    report(result.render()
           + f"\n  co-located read CPU saving @2.0GHz 2vms: {saving:.1f}%")

    for (scenario, phase), panel in result.panels.items():
        for freq in panel.x_values:
            for vms in (2, 4):
                vanilla = panel.value(f"vanilla-{vms}vms", freq)
                vread = panel.value(f"vRead-{vms}vms", freq)
                assert vread < vanilla, (
                    f"{scenario}/{phase}/{freq}/{vms}vms: vRead must save CPU")
        # Same cycles at a higher clock take less time.
        vanilla_series = panel.series["vanilla-2vms"]
        assert vanilla_series[0] > vanilla_series[-1]

    assert saving > 20.0
