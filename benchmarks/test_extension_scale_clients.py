"""Extension bench: multi-client scale-out (CPU-bound warm reads).

Shape checks: the vanilla path's aggregate throughput saturates the
quad-core host as clients are added, while vRead — needing a fraction of
the cycles per byte — keeps scaling, so the gap widens with client count.
"""

from repro.experiments import scale_clients

FILE_BYTES = 16 << 20


def test_extension_scale_clients(benchmark, report):
    result = benchmark.pedantic(
        lambda: scale_clients.run(file_bytes=FILE_BYTES),
        rounds=1, iterations=1)
    lines = [result.render()]
    gaps = []
    for i, n_clients in enumerate(result.x_values):
        vanilla = result.series["vanilla"][i]
        vread = result.series["vRead"][i]
        gap = (vread / vanilla - 1) * 100
        gaps.append(gap)
        lines.append(f"  {n_clients} clients: vRead advantage {gap:+.1f}%")
    report("\n".join(lines))
    # vRead wins at every client count...
    assert all(gap > 0 for gap in gaps)
    # ...and the advantage grows as the host saturates.
    assert gaps[-1] > gaps[0] * 1.5
    # vRead's aggregate keeps growing with clients; vanilla flattens.
    vread_series = result.series["vRead"]
    assert vread_series[-1] > vread_series[0] * 1.5
