"""Ablation bench: HDFS streaming packet size on the vanilla path.

Shape checks: throughput peaks at a mid-sized packet — small packets drown
in per-packet processing, giant packets serialize the pipeline stages —
while vRead (the reference line) does not depend on this tuning at all.
"""

from repro.experiments import ablation_packet_size

FILE_BYTES = 32 << 20


def test_ablation_packet_size(benchmark, report):
    result = benchmark.pedantic(
        lambda: ablation_packet_size.run(file_bytes=FILE_BYTES),
        rounds=1, iterations=1)
    report(result.render())
    tiny = result.vanilla[16 * 1024]
    mid = result.vanilla[256 * 1024]
    huge = result.vanilla[4 << 20]
    assert mid > tiny * 1.5, "per-packet overheads must crush tiny packets"
    assert mid >= huge, "giant packets must not beat the pipelined optimum"
    # vRead outperforms vanilla at its best packet size.
    assert result.vread_reference > max(result.vanilla.values())
