"""Figure 8 bench: CPU breakdown, remote read with TCP daemon transport.

Shape checks: the user-space daemon TCP ("vRead-net") is less efficient
per byte than in-kernel vhost-net, yet the total CPU is still below vanilla
because the datanode VM is out of the path entirely.
"""

from repro.experiments.cpu_breakdowns import run_fig07, run_fig08
from repro.metrics.accounting import RDMA, VHOST_NET, VREAD_NET

FILE_BYTES = 32 << 20


def test_fig08_cpu_remote_tcp(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_fig08(file_bytes=FILE_BYTES), rounds=1, iterations=1)
    report(result.render()
           + f"\n  client CPU saving: {result.client_saving_pct():.1f}% "
             f"(paper: total still slightly lower than vanilla)"
           + f"\n  datanode-side saving: {result.serving_saving_pct():.1f}%")
    # Total CPU still below the vanilla case on both sides...
    assert result.client_saving_pct() > 0
    assert result.serving_saving_pct() > 0
    # ...but far less profitable than the RDMA transport.
    rdma_result = run_fig07(file_bytes=FILE_BYTES)
    tcp_client_total = result.client.bars["vRead"].total
    rdma_client_total = rdma_result.client.bars["vRead"].total
    assert tcp_client_total > rdma_client_total
    # vRead-net appears on both sides; nothing crosses vhost-net with vRead.
    assert result.client.bars["vRead"].get(VREAD_NET) > 0
    assert result.serving.bars["vRead-daemon"].get(VREAD_NET) > 0
    assert result.client.bars["vRead"].get(VHOST_NET) == 0
    # Per-byte, the daemons' user-space TCP costs more than RDMA did.
    assert (result.serving.bars["vRead-daemon"].get(VREAD_NET)
            > rdma_result.serving.bars["vRead-daemon"].get(RDMA) * 3)
