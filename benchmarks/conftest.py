"""Benchmark-suite plumbing: collect rendered tables, print them at the end.

Each benchmark regenerates one of the paper's tables/figures and records the
rendered rows via the ``report`` fixture; the terminal-summary hook prints
everything after the pytest-benchmark timing table, so
``pytest benchmarks/ --benchmark-only`` output can be compared to the paper
directly.
"""

import pytest

_reports = []


@pytest.fixture
def report():
    """Record a rendered figure/table for the end-of-run summary."""

    def _record(text: str) -> None:
        _reports.append(text)

    return _record


def pytest_terminal_summary(terminalreporter):
    if not _reports:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for text in _reports:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
