#!/usr/bin/env python3
"""TestDFSIO on the paper's Figure 10 deployment.

Runs the Hadoop TestDFSIO benchmark (write, cold read, warm re-read) on the
three data layouts the paper evaluates — co-located, remote, hybrid — with
vanilla HDFS and with vRead, and prints a Fig 11-style table.

Run:  python examples/dfsio_benchmark.py [--freq GHZ] [--vms N] [--mb SIZE]
"""

import argparse

from repro.cluster import VirtualHadoopCluster
from repro.metrics.report import Table
from repro.workloads.testdfsio import TestDfsio

LAYOUTS = {
    "co-located": {"favored": ["dn1"], "spread": False},
    "remote": {"favored": ["dn2"], "spread": False},
    "hybrid": {"favored": None, "spread": True},
}


def run_one(scenario, layout, freq_hz, total_vms, file_mb, vread):
    cluster = VirtualHadoopCluster(frequency_hz=freq_hz,
                                   total_vms_per_host=total_vms,
                                   vread=vread)
    dfsio = TestDfsio(cluster.clients.get(), request_bytes=1 << 20)

    def proc():
        write = yield from dfsio.write(2, file_mb << 20, **layout)
        cluster.drop_all_caches()
        read = yield from dfsio.read(2)
        reread = yield from dfsio.read(2)
        return write, read, reread

    write, read, reread = cluster.run(cluster.sim.process(proc()))
    cluster.stop_background()
    return write, read, reread


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--freq", type=float, default=2.0,
                        help="CPU frequency in GHz (paper: 1.6/2.0/3.2)")
    parser.add_argument("--vms", type=int, default=2, choices=(2, 4),
                        help="total VMs per host (4 adds lookbusy hogs)")
    parser.add_argument("--mb", type=int, default=64,
                        help="file size in MB (2 files are written)")
    args = parser.parse_args()

    table = Table(["scenario", "mode", "write MB/s", "read MB/s",
                   "re-read MB/s", "read CPU ms"],
                  title=f"TestDFSIO @{args.freq}GHz, {args.vms} VMs/host, "
                        f"2 x {args.mb}MB files")
    improvements = []
    for scenario, layout in LAYOUTS.items():
        row = {}
        for vread in (False, True):
            write, read, reread = run_one(scenario, layout, args.freq * 1e9,
                                          args.vms, args.mb, vread)
            mode = "vRead" if vread else "vanilla"
            table.add_row(scenario, mode, f"{write.throughput_mbps:.0f}",
                          f"{read.throughput_mbps:.0f}",
                          f"{reread.throughput_mbps:.0f}",
                          f"{read.cpu_milliseconds:.1f}")
            row[mode] = read.throughput_mbps
        improvements.append(
            (scenario, (row["vRead"] / row["vanilla"] - 1) * 100))
    print(table.render())
    for scenario, gain in improvements:
        print(f"  {scenario}: vRead cold-read improvement {gain:+.1f}%")


if __name__ == "__main__":
    main()
