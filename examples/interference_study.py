#!/usr/bin/env python3
"""I/O-thread interference study (the paper's Section 2 motivation).

Shows, on one machine, the two effects that motivate vRead:

1. netperf TCP_RR between two co-located VMs collapses when background
   lookbusy VMs keep the vCPU / vhost-net threads from finding free cores
   (Figure 3);
2. the same contention inflates HDFS read delays — and vRead, having fewer
   thread handoffs per request, degrades far less (Figure 9).

Run:  python examples/interference_study.py
"""

from repro.cluster import VirtualHadoopCluster
from repro.storage.content import PatternSource
from repro.workloads.filereader import FileReadBenchmark
from repro.workloads.netperf import NetperfRR


def netperf_rate(total_vms, request_bytes=32 * 1024):
    cluster = VirtualHadoopCluster(total_vms_per_host=total_vms)
    rr = NetperfRR(cluster.network, cluster.client_vm,
                   cluster.datanode_vms[0], request_bytes)

    def proc():
        return (yield from rr.run(duration=0.25))

    rate = cluster.run(cluster.sim.process(proc()))
    cluster.stop_background()
    return rate


def hdfs_delay(total_vms, vread, request_bytes=1 << 20):
    cluster = VirtualHadoopCluster(total_vms_per_host=total_vms, vread=vread)
    payload = PatternSource(16 << 20, seed=3)

    def load():
        yield from cluster.write_dataset("/data", payload, favored=["dn1"])

    cluster.run(cluster.sim.process(load()))
    client = cluster.clients.get()
    cluster.drop_all_caches()

    def read():
        bench = FileReadBenchmark(request_bytes)
        yield from bench.read_hdfs(client, "/data")
        return bench.mean_delay

    delay = cluster.run(cluster.sim.process(read()))
    cluster.stop_background()
    return delay * 1e3


def main():
    print("== effect 1: TCP transaction rate under CPU contention ==")
    quiet = netperf_rate(2)
    loaded = netperf_rate(4)
    print(f"  2 VMs (no load):        {quiet:8.0f} transactions/s")
    print(f"  4 VMs (2x lookbusy85%): {loaded:8.0f} transactions/s "
          f"({(1 - loaded / quiet) * 100:.1f}% drop; paper: ~20%)")

    print("\n== effect 2: HDFS 1MB-read delay under the same contention ==")
    rows = {}
    for vread in (False, True):
        label = "vRead" if vread else "vanilla"
        rows[label] = (hdfs_delay(2, vread), hdfs_delay(4, vread))
        quiet_ms, loaded_ms = rows[label]
        print(f"  {label:8s} 2 VMs: {quiet_ms:6.2f} ms   "
              f"4 VMs: {loaded_ms:6.2f} ms "
              f"({(loaded_ms / quiet_ms - 1) * 100:+.1f}%)")
    vanilla_penalty = rows["vanilla"][1] / rows["vanilla"][0] - 1
    vread_penalty = rows["vRead"][1] / rows["vRead"][0] - 1
    print(f"\ncontention penalty: vanilla {vanilla_penalty:+.1%} vs "
          f"vRead {vread_penalty:+.1%} — fewer thread handoffs, "
          f"less synchronization delay")


if __name__ == "__main__":
    main()
