#!/usr/bin/env python3
"""The paper's Section 5.2 application stack: HBase, Hive, and Sqoop.

Builds the hybrid 4-VM deployment, loads an HBase table and a Hive table
through HDFS, then compares vanilla vs vRead on:

* HBase PerformanceEvaluation-style scan / sequential read / random read,
* a Hive range query (select * from test where id >= x and id <= y),
* a Sqoop export of the Hive table into MySQL on a third machine.

Run:  python examples/analytics_stack.py
"""

from repro.cluster import VirtualHadoopCluster
from repro.hostmodel.frequency import GHZ_2_0
from repro.metrics.report import Table
from repro.virt.vm import VirtualMachine
from repro.workloads.hbase import HBaseTable
from repro.workloads.hive import HiveTable
from repro.workloads.sqoop import MySqlServer, SqoopExport

HBASE_ROWS = 16_384
HIVE_ROWS = 131_072


def hbase_numbers(vread):
    cluster = VirtualHadoopCluster(vread=vread, total_vms_per_host=4,
                                   frequency_hz=GHZ_2_0)
    table = HBaseTable(cluster.clients.get(), rows_per_region=8_192)

    def proc():
        yield from table.load(HBASE_ROWS)
        cluster.drop_all_caches()
        scan = yield from table.scan()
        cluster.drop_all_caches()
        seq = yield from table.sequential_read(HBASE_ROWS // 4)
        cluster.drop_all_caches()
        rnd = yield from table.random_read(HBASE_ROWS // 8)
        table.close()
        return scan, seq, rnd

    scan, seq, rnd = cluster.run(cluster.sim.process(proc()))
    cluster.stop_background()
    return {"scan": scan.throughput_mbps,
            "sequential read": seq.throughput_mbps,
            "random read": rnd.throughput_mbps}


def hive_and_sqoop_seconds(vread):
    cluster = VirtualHadoopCluster(n_hosts=3, n_datanodes=2, vread=vread,
                                   total_vms_per_host=4,
                                   frequency_hz=GHZ_2_0)
    mysql = MySqlServer(VirtualMachine(cluster.hosts[2], "mysql"),
                        cluster.network)
    table = HiveTable(cluster.clients.get(), rows_per_file=65_536)
    export = SqoopExport(cluster.clients.get(), mysql, cluster.network)

    def proc():
        yield from table.load(HIVE_ROWS)
        cluster.drop_all_caches()
        query = yield from table.select_where_id_between(
            HIVE_ROWS // 4, HIVE_ROWS // 2)
        cluster.drop_all_caches()
        exported = yield from export.export_table(table)
        return query, exported

    query, exported = cluster.run(cluster.sim.process(proc()))
    cluster.stop_background()
    assert exported.rows == HIVE_ROWS
    return query.elapsed_seconds, exported.elapsed_seconds


def main():
    print(f"loading HBase ({HBASE_ROWS} x 1KB rows) and Hive "
          f"({HIVE_ROWS} x 128B rows) tables...\n")

    vanilla_hbase = hbase_numbers(vread=False)
    vread_hbase = hbase_numbers(vread=True)
    table = Table(["operation", "Vanilla MB/s", "vRead MB/s", "improvement"],
                  title="HBase (paper Table 2: +27.3 / +23.6 / +17.3 %)")
    for op in vanilla_hbase:
        gain = (vread_hbase[op] / vanilla_hbase[op] - 1) * 100
        table.add_row(op, f"{vanilla_hbase[op]:.2f}",
                      f"{vread_hbase[op]:.2f}", f"{gain:+.1f}%")
    print(table.render())

    vanilla_hive, vanilla_sqoop = hive_and_sqoop_seconds(vread=False)
    vread_hive, vread_sqoop = hive_and_sqoop_seconds(vread=True)
    table = Table(["workload", "Vanilla (s)", "vRead (s)", "reduction"],
                  title="\nHive + Sqoop (paper Table 3: -21.3 / -11.3 %)")
    table.add_row("Hive select", f"{vanilla_hive:.3f}", f"{vread_hive:.3f}",
                  f"{(1 - vread_hive / vanilla_hive) * 100:.1f}%")
    table.add_row("Sqoop export", f"{vanilla_sqoop:.3f}",
                  f"{vread_sqoop:.3f}",
                  f"{(1 - vread_sqoop / vanilla_sqoop) * 100:.1f}%")
    print(table.render())


if __name__ == "__main__":
    main()
