#!/usr/bin/env python3
"""Operations drill: replica loss, failover, re-replication, fsck.

A guided tour of the robustness substrate around vRead:

1. write a 2-way-replicated dataset and fsck it;
2. corrupt one replica — the block scanner catches it and drops the copy;
3. crash a datanode — reads fail over, the replication monitor re-creates
   the missing replicas on the survivors;
4. fsck confirms the cluster healed, and a final vRead read verifies the
   data end to end.

Run:  python examples/failure_drill.py
"""

from repro.cluster import VirtualHadoopCluster
from repro.hdfs.blockscanner import BlockScanner
from repro.hdfs.fsck import fsck
from repro.hdfs.replication import ReplicationMonitor
from repro.storage.content import LiteralSource, PatternSource
from repro.virt.vm import VirtualMachine
from repro.hdfs import Datanode


def run_for(cluster, seconds):
    def proc():
        yield cluster.sim.timeout(seconds)

    cluster.run(cluster.sim.process(proc()))


def main():
    # Three datanodes so re-replication has somewhere to go.
    cluster = VirtualHadoopCluster(n_hosts=3, block_size=1 << 20,
                                   replication=2, vread=True)
    payload = PatternSource(4 << 20, seed=99)

    def load():
        yield from cluster.write_dataset("/drill/data", payload)

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    print("1) dataset written (4MB, replication=2)")
    print("   " + fsck(cluster.namenode).render().replace("\n", "\n   "))

    # --- 2) silent corruption, caught by the block scanner.
    block = cluster.namenode.get_blocks("/drill/data")[0]
    victim_dn_id = block.locations[0]
    victim = next(dn for dn in cluster.datanodes
                  if dn.datanode_id == victim_dn_id)
    scanner = BlockScanner(victim, scan_interval=0.5)
    # (register expectations for already-committed blocks)
    for blk in cluster.namenode.get_blocks("/drill/data"):
        scanner._on_event("commit", blk, victim_dn_id)
    inode = victim.vm.guest_fs.lookup(victim.block_path(block.name))
    inode.truncate()
    inode.append(LiteralSource(b"\xde\xad" * (block.size // 2)))
    victim.vm.drop_guest_cache()
    scanner.start()
    run_for(cluster, 2.0)
    scanner.stop()
    print(f"\n2) corrupted {block.name} on {victim_dn_id}; scanner found "
          f"{len(scanner.corruptions_found)} bad replica(s) and dropped them")

    # --- 3) crash the degraded datanode outright; monitor re-replicates
    # every block it held from the surviving replicas.
    monitor = ReplicationMonitor(cluster.namenode, cluster.network,
                                 heartbeat_interval=0.5)
    monitor.start(cluster.sim)
    crash = victim
    crash.stop()
    run_for(cluster, 8.0)
    monitor.stop()
    print(f"\n3) crashed {crash.datanode_id}; monitor performed "
          f"{monitor.re_replications} re-replication(s)")

    # --- 4) health check + verified read through vRead.
    report = fsck(cluster.namenode, verify_content=True)
    print("\n4) " + report.render().replace("\n", "\n   "))

    def read():
        source = yield from cluster.client().read_file("/drill/data")
        return source

    got = cluster.run(cluster.sim.process(read()))
    assert got.checksum() == payload.checksum()
    print("\n   final vRead read: 4MB verified byte-for-byte ✓")


if __name__ == "__main__":
    main()
