#!/usr/bin/env python3
"""Operations drill: a scheduled fault storm, resilient reads, healing.

A guided tour of the fault-injection subsystem (``repro.faults``) around
vRead:

1. write a 2-way-replicated dataset and fsck it;
2. declare a ``FaultPlan`` — datanode crash, vRead daemon crash, RDMA
   flap and a disk-latency spike, all on the simulation clock — and arm
   it under a multi-block vRead read: the read degrades to the vanilla
   path, fails over to surviving replicas, and still verifies;
3. the replication monitor re-creates the lost replicas on the
   survivors while the daemon restarts and the client re-probes it;
4. fsck confirms the cluster healed, and a final (recovered) vRead read
   verifies the data end to end.

Run:  python examples/failure_drill.py
"""

from repro.cluster import VirtualHadoopCluster
from repro.faults import (
    DaemonCrash,
    DatanodeCrash,
    DiskLatencySpike,
    FaultPlan,
    RdmaFlap,
    VReadClientPolicy,
)
from repro.hdfs.fsck import fsck
from repro.hdfs.replication import ReplicationMonitor
from repro.storage.content import PatternSource


def run_for(cluster, seconds):
    def proc():
        yield cluster.sim.timeout(seconds)

    cluster.run(cluster.sim.process(proc()))


def main():
    # The whole storm is declared up front.  Times are relative to
    # cluster.faults.arm(), so dataset loading can't set anything off.
    plan = (FaultPlan()
            .at(0.000, DatanodeCrash("dn1"))           # stays down: heals by re-replication
            .at(0.001, DaemonCrash(duration=2.0))      # restarts after 2s
            .at(0.000, RdmaFlap(duration=1.0))         # remote reads fall back to TCP
            .at(0.000, DiskLatencySpike("host2", factor=6.0, duration=2.0)))

    # Three datanodes so re-replication has somewhere to go.
    cluster = VirtualHadoopCluster(n_hosts=3, block_size=1 << 20,
                                   replication=2, vread=True, seed=99,
                                   faults=plan)
    # Snappy degradation + re-probe so the drill is quick to watch.
    cluster.vread_manager.client_policy = VReadClientPolicy(
        open_timeout=0.05, read_timeout=0.1, reprobe_interval=0.5)
    payload = PatternSource(4 << 20, seed=99)

    def load():
        yield from cluster.write_dataset("/drill/data", payload)

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    print("1) dataset written (4MB, replication=2)")
    print("   " + fsck(cluster.namenode).render().replace("\n", "\n   "))
    print("\n2) fault plan:")
    print("   " + cluster.faults.plan.describe().replace("\n", "\n   "))

    # --- the storm breaks while a read is in flight.
    client = cluster.clients.get()
    cluster.faults.arm()

    def read():
        source = yield from client.read_file("/drill/data")
        return source

    got = cluster.run(cluster.sim.process(read()))
    assert got.checksum() == payload.checksum()
    print("\n   mid-storm read: 4MB verified byte-for-byte despite "
          f"{cluster.fault_counters.total('fault.')} fault event(s)")

    # --- 3) heal: re-replicate dn1's blocks; daemon restart + re-probe.
    monitor = ReplicationMonitor(cluster.namenode, cluster.network,
                                 heartbeat_interval=0.5)
    monitor.start(cluster.sim)
    run_for(cluster, 8.0)
    monitor.stop()
    print(f"\n3) monitor performed {monitor.re_replications} "
          "re-replication(s) while the daemon restarted")

    # --- 4) health check + verified read through a recovered vRead.
    report = fsck(cluster.namenode, verify_content=True)
    print("\n4) " + report.render().replace("\n", "\n   "))

    got = cluster.run(cluster.sim.process(read()))
    assert got.checksum() == payload.checksum()
    library = cluster.vread_manager.library_of(cluster.client_vm)
    state = "degraded" if library.degraded else "recovered"
    print(f"\n   final read: 4MB verified byte-for-byte, vRead {state} ✓")
    print("\nfault/recovery ledger:")
    print("   " + cluster.fault_counters.render().replace("\n", "\n   "))


if __name__ == "__main__":
    main()
