#!/usr/bin/env python3
"""WordCount on the mini MapReduce engine — proof that the simulation moves
real data, not just byte counts.

Generates a corpus of English-ish text, stores it in HDFS across both
datanodes, runs a WordCount job through the vRead-enabled client, and
cross-checks the resulting counts against a plain in-memory count of the
same corpus.  Also runs `hdfs fsck` at the end.

Run:  python examples/wordcount.py
"""

import random
from collections import Counter

from repro.cluster import VirtualHadoopCluster
from repro.hdfs.fsck import fsck
from repro.workloads.mapreduce import MapSpec, MiniMapReduce

WORDS = ("the quick brown fox jumps over lazy dog hadoop hdfs vread "
         "hypervisor virtio ring daemon block replica namenode").split()


def make_corpus(n_lines: int, seed: int = 0) -> bytes:
    rng = random.Random(seed)
    lines = (" ".join(rng.choices(WORDS, k=8)) for _ in range(n_lines))
    return ("\n".join(lines) + "\n").encode()


def main():
    cluster = VirtualHadoopCluster(block_size=1 << 20, vread=True)
    corpora = {f"/corpus/part-{i}": make_corpus(20_000, seed=i)
               for i in range(4)}

    def load():
        for path, text in corpora.items():
            yield from cluster.write_dataset(path, text, spread=True)

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    total_bytes = sum(len(text) for text in corpora.values())
    print(f"loaded {len(corpora)} corpus files "
          f"({total_bytes / 1e6:.1f} MB) across both datanodes")

    # --- the WordCount job: a stateful per-task mapper carries words split
    # across piece boundaries (the corpus ends with '\n', so nothing is
    # left dangling at EOF).
    engine = MiniMapReduce(cluster.clients.get(), map_slots=2,
                           map_cycles_per_byte=2.0)  # string processing
    counts = Counter()

    def mapper_factory(spec):
        state = {"prefix": b""}

        def mapper(piece):
            data = state["prefix"] + piece.read(0, piece.size)
            if not data.endswith((b" ", b"\n")):
                data, _, state["prefix"] = data.rpartition(b" ")
            else:
                state["prefix"] = b""
            local = Counter(data.decode().split())
            counts.update(local)
            return sum(local.values())

        return mapper

    def job():
        start = cluster.sim.now
        specs = [MapSpec(path, request_bytes=256 * 1024)
                 for path in corpora]
        results = yield from engine.run(specs,
                                        mapper_factory=mapper_factory)
        return results, cluster.sim.now - start

    results, elapsed = cluster.run(cluster.sim.process(job()))

    # --- verify against a reference count of the same corpus.
    reference = Counter()
    for text in corpora.values():
        reference.update(text.decode().split())
    assert counts == reference, "WordCount result diverged from reference!"

    print(f"counted {sum(counts.values()):,} words in "
          f"{elapsed * 1e3:.0f} ms of simulated time "
          f"({total_bytes / 1e6 / elapsed:.0f} MB/s through vRead)")
    for word, count in counts.most_common(5):
        print(f"  {word:12s} {count:7,d}")

    report = fsck(cluster.namenode, verify_content=True)
    print(f"\n{report.render()}")


if __name__ == "__main__":
    main()
