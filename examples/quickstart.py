#!/usr/bin/env python3
"""Quickstart: build a virtual Hadoop cluster, read a file with and without
vRead, and verify the bytes are identical.

Run:  python examples/quickstart.py
"""

from repro.cluster import VirtualHadoopCluster
from repro.storage.content import PatternSource


def timed_read(cluster, client, path, request_bytes=1 << 20):
    """Read `path` fully; returns (seconds, sha256) — data is verified."""
    start = cluster.sim.now

    def proc():
        source = yield from client.read_file(path, request_bytes)
        return source

    source = cluster.run(cluster.sim.process(proc()))
    return cluster.sim.now - start, source.checksum()


def main():
    payload = PatternSource(64 << 20, seed=42)  # a 64 MB dataset

    results = {}
    for mode in ("vanilla", "vRead"):
        # Two quad-core hosts on a 10GbE/RoCE LAN; client + namenode VM and
        # datanode VM co-located on host1, second datanode on host2.
        cluster = VirtualHadoopCluster(vread=(mode == "vRead"),
                                       frequency_hz=2.0e9)

        # Load the dataset through HDFS (plain write path).
        def load():
            yield from cluster.write_dataset("/demo/data", payload,
                                             favored=["dn1"])

        cluster.run(cluster.sim.process(load()))
        cluster.settle()  # let vRead mount refreshes finish

        client = cluster.clients.get()
        cluster.drop_all_caches()
        cold, digest_cold = timed_read(cluster, client, "/demo/data")
        warm, digest_warm = timed_read(cluster, client, "/demo/data")
        assert digest_cold == digest_warm == payload.checksum(), \
            "data corruption — the simulator moves real bytes!"
        results[mode] = (cold, warm)
        print(f"{mode:8s}  cold read: {cold * 1e3:7.1f} ms "
              f"({64 / cold:6.0f} MB/s)   warm re-read: {warm * 1e3:7.1f} ms "
              f"({64 / warm:6.0f} MB/s)")

    cold_gain = results["vanilla"][0] / results["vRead"][0] - 1
    warm_gain = results["vanilla"][1] / results["vRead"][1] - 1
    print(f"\nvRead speedup: {cold_gain:+.0%} cold, {warm_gain:+.0%} warm "
          f"(paper: up to +60% read, +150% re-read)")
    print("every byte read was checksum-verified against the source")


if __name__ == "__main__":
    main()
